//! The server: a `std::net::TcpListener` + worker-thread pool around one
//! shared [`LiveStore`].
//!
//! Every worker accepts connections from the same (non-blocking)
//! listener and serves one connection at a time, line by line: read a
//! request line, execute it against a guard-scoped snapshot of the
//! store, write one response line, flush. All workers share
//!
//! - one [`LiveStore`] (graph + the generation-stamped `p(π|c)`
//!   [`SharedCache`](pivote_core::SharedCache)), so a density memoized
//!   for any connection is a hit for every later query on any
//!   connection, and
//! - one [`LiveSearchCache`], so the keyword index is built once per
//!   store generation, not once per request.
//!
//! The server also owns the background [`MaintenanceHandle`] (when
//! configured): compaction is scheduled off every request path, exactly
//! as the library contract prescribes.
//!
//! **Shutdown semantics.** A `{"op":"shutdown"}` request is
//! acknowledged, then the server stops accepting; in-flight connections
//! finish their current request. [`Server::shutdown`] (the graceful
//! path) persists the density cache as a warm-state sidecar
//! ([`pivote_core::save_warm_state`]) when a `warm_path` is configured,
//! so the next process starts with every memoized density intact —
//! [`store_with_warm_state`] is the matching startup half. Dropping the
//! [`Server`] without calling `shutdown` is the *kill* path: threads are
//! joined but nothing is persisted.
//!
//! A panic while serving one request poisons nothing global: writes
//! fail closed per the store's poisoning policy
//! ([`pivote_core::StoreError`]) and reads keep answering, so the
//! process keeps serving the last consistent snapshot.

use crate::protocol::{scored_names, Reply, Request};
use pivote_core::{
    load_warm_state, save_warm_state, Expander, GraphHandle, HeatMap, LiveReader, LiveStore,
    MaintenanceHandle, PreparedSnapshot, RankingConfig, SfQuery, WarmStateError,
};
use pivote_explore::{LiveSearchCache, SearchWarmer};
use pivote_kg::{parse_into_delta, parse_removed_into_delta, CompactionPolicy, GraphBackend};
use pivote_search::SearchConfig;
use serde::Value;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Background compaction driven by the server's own
/// [`MaintenanceHandle`].
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// When the tail is degenerate enough to repartition.
    pub policy: CompactionPolicy,
    /// Shard count a compaction pass re-partitions to.
    pub target_shards: usize,
    /// Poll interval of the maintenance thread.
    pub tick: Duration,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads accepting and serving connections.
    pub workers: usize,
    /// Ranking model configuration shared by rank/expand/heatmap.
    pub ranking: RankingConfig,
    /// Keyword-search engine configuration.
    pub search: SearchConfig,
    /// Warm-state sidecar persisted by [`Server::shutdown`]; `None`
    /// skips persistence (pair with [`store_with_warm_state`] at
    /// startup).
    pub warm_path: Option<PathBuf>,
    /// Background compaction; `None` leaves the partition to grow.
    pub maintenance: Option<MaintenanceConfig>,
    /// Serve reads only: `append`/`retract` are answered with a
    /// per-request error instead of mutating the store. The replica
    /// server mode — a follower's store is written exclusively by the
    /// delta-log tailer, never by clients.
    pub read_only: bool,
    /// How long a connection may sit without delivering a complete
    /// request line before the worker closes it and serves someone
    /// else. Bounds the damage of idle (and slow-loris) clients: with
    /// `workers` connections each pinned by a silent peer, the pool
    /// would otherwise starve forever.
    pub idle_timeout: Duration,
    /// Serve reads from generation-pinned [`PreparedSnapshot`]s: the
    /// store publishes a prepared context per write, read requests
    /// acquire it with one atomic load (never the store lock), a
    /// background [`SearchWarmer`] pre-builds the keyword index per
    /// generation, and deterministic read responses are memoized per
    /// generation. On by default — turn off to serve every read through
    /// the store lock (the pre-PR-10 path, kept for A/B benchmarks).
    pub snapshots: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            ranking: RankingConfig::default(),
            search: SearchConfig::default(),
            warm_path: None,
            maintenance: None,
            read_only: false,
            idle_timeout: Duration::from_secs(30),
            snapshots: true,
        }
    }
}

/// What a graceful [`Server::shutdown`] did.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Store generation at shutdown.
    pub generation: u64,
    /// Densities persisted to the warm sidecar (`None` when no
    /// `warm_path` was configured or the save failed).
    pub warm_densities_saved: Option<usize>,
    /// The warm-state save error, when one occurred.
    pub warm_error: Option<WarmStateError>,
}

/// The snapshot fingerprint of whatever layout the backend holds — the
/// pairing key between a graph and its warm-state sidecar. The sharded
/// layout fingerprints its union rebuild, which by the append==rebuild
/// guarantee equals the single graph over the same logical content.
pub fn backend_fingerprint(backend: &GraphBackend) -> u64 {
    backend.fingerprint()
}

/// Open a [`LiveStore`] over `backend`, resuming the density cache from
/// the warm-state sidecar at `warm_path` when it matches this graph.
/// Returns the store and whether it started warm; any sidecar problem
/// (missing file, stale fingerprint, corrupt bytes) silently starts
/// cold — the sidecar is a latency artifact, never a correctness input.
pub fn store_with_warm_state(
    backend: impl Into<GraphBackend>,
    threads: usize,
    warm_path: &Path,
) -> (Arc<LiveStore>, bool) {
    let backend = backend.into();
    let fp = backend_fingerprint(&backend);
    match load_warm_state(warm_path, fp) {
        Ok(cache) => (
            Arc::new(LiveStore::with_cache(backend, threads, cache)),
            true,
        ),
        Err(_) => (Arc::new(LiveStore::with_threads(backend, threads)), false),
    }
}

/// How many canonicalized responses the per-generation memo holds
/// before evicting the least recently used one.
const MEMO_CAPACITY: usize = 256;

/// A bounded, generation-keyed memo of rendered responses for the
/// deterministic read ops (rank / expand / heatmap / search). Keyed by
/// the parsed request's canonical `Debug` form — two raw lines that
/// parse to the same request share one entry regardless of key order —
/// and dropped **wholesale** the moment a response for a newer
/// generation is observed: a memoized answer is only ever served at the
/// exact generation it was computed at, so memoized and fresh responses
/// are bit-identical by construction.
struct ResponseMemo {
    /// Store generation every held entry was computed at.
    generation: u64,
    /// LRU clock; bumped per touch.
    stamp: u64,
    /// canonical request → (last-touched stamp, rendered response).
    entries: HashMap<String, (u64, String)>,
}

impl ResponseMemo {
    fn new() -> Self {
        Self {
            generation: 0,
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    /// Drop everything when `generation` moved past the held one.
    fn roll_to(&mut self, generation: u64) {
        if self.generation != generation {
            self.generation = generation;
            self.entries.clear();
        }
    }

    fn get(&mut self, generation: u64, key: &str) -> Option<String> {
        self.roll_to(generation);
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(key).map(|(touched, response)| {
            *touched = stamp;
            response.clone()
        })
    }

    fn insert(&mut self, generation: u64, key: String, response: String) {
        self.roll_to(generation);
        if self.entries.len() >= MEMO_CAPACITY && !self.entries.contains_key(&key) {
            // O(capacity) min-scan eviction: at 256 entries that is
            // noise next to rendering one response
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.stamp += 1;
        self.entries.insert(key, (self.stamp, response));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

struct Shared {
    store: Arc<LiveStore>,
    search: Arc<LiveSearchCache>,
    ranking: RankingConfig,
    shutdown: AtomicBool,
    read_only: bool,
    idle_timeout: Duration,
    /// Whether reads go through the prepared-snapshot path.
    snapshots: bool,
    memo: Mutex<ResponseMemo>,
    /// Deterministic read responses served straight from the memo.
    memo_hits: AtomicU64,
    /// Deterministic read responses that had to be computed.
    memo_misses: AtomicU64,
    /// Read ops served from a prepared snapshot (no store lock).
    snapshot_reads: AtomicU64,
    /// Read ops that fell back to (or were configured onto) the store's
    /// read lock.
    lock_reads: AtomicU64,
    /// Handle to the [`SearchWarmer`] thread, when one runs. The write
    /// path unparks it right after publishing a new generation so the
    /// engine rebuild starts immediately instead of at the warmer's
    /// next tick — requests arriving behind a write then park on the
    /// snapshot's build slot and share the result, rather than racing
    /// the warmer with a duplicate build.
    warm_waker: Option<std::thread::Thread>,
}

impl Shared {
    /// Nudge the background warmer after a successful write.
    fn kick_warmer(&self) {
        if let Some(w) = &self.warm_waker {
            w.unpark();
        }
    }
}

/// One request's read context: a generation-pinned prepared snapshot
/// (no store lock, prebuilt query context) or a guard on the store's
/// read lock — the op handlers are identical over either.
enum ReadCtx<'a> {
    Snapshot(Arc<PreparedSnapshot>),
    Lock(LiveReader<'a>),
}

impl ReadCtx<'_> {
    fn handle(&self) -> GraphHandle<'_> {
        match self {
            ReadCtx::Snapshot(snap) => snap.handle(),
            ReadCtx::Lock(reader) => reader.handle(),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            ReadCtx::Snapshot(snap) => snap.generation(),
            ReadCtx::Lock(reader) => reader.generation(),
        }
    }
}

/// Acquire the read context for one request, counting which path served
/// it. Snapshot mode degrades soundly: if no snapshot is published yet
/// (publication disabled, or a race with `enable_snapshots`), the read
/// lock serves instead.
fn read_ctx(shared: &Shared) -> ReadCtx<'_> {
    if shared.snapshots {
        if let Some(snap) = shared.store.snapshot() {
            shared.snapshot_reads.fetch_add(1, Ordering::Relaxed);
            return ReadCtx::Snapshot(snap);
        }
    }
    shared.lock_reads.fetch_add(1, Ordering::Relaxed);
    ReadCtx::Lock(shared.store.read())
}

/// A running server. Keep it alive for as long as you serve; consume it
/// with [`Server::shutdown`] for the graceful (warm-state-persisting)
/// stop, or drop it for the kill path.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    maintenance: Option<MaintenanceHandle>,
    warmer: Option<SearchWarmer>,
    warm_path: Option<PathBuf>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the worker pool over `store`. With
    /// [`ServeConfig::snapshots`] on (the default), the store is opted
    /// into prepared-snapshot publication and a background
    /// [`SearchWarmer`] pre-builds the keyword index for every new
    /// generation off the request path.
    pub fn bind(addr: &str, store: Arc<LiveStore>, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let search = Arc::new(LiveSearchCache::new(config.search));
        if config.snapshots {
            store.enable_snapshots();
            // build the initial generation's search engines before any
            // worker answers: the first search request must not pay the
            // full index build inline (BENCH_7's 33 ms head-of-line
            // stall); later generations are rebuilt by the SearchWarmer
            if let Some(snap) = store.snapshot() {
                let _ = search.prepare(&snap);
            }
        }
        let warmer = config.snapshots.then(|| {
            SearchWarmer::spawn(
                Arc::clone(&store),
                Arc::clone(&search),
                Duration::from_millis(2),
            )
        });
        let shared = Arc::new(Shared {
            store: Arc::clone(&store),
            search: Arc::clone(&search),
            ranking: config.ranking,
            shutdown: AtomicBool::new(false),
            read_only: config.read_only,
            idle_timeout: config.idle_timeout,
            snapshots: config.snapshots,
            memo: Mutex::new(ResponseMemo::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            snapshot_reads: AtomicU64::new(0),
            lock_reads: AtomicU64::new(0),
            warm_waker: warmer.as_ref().map(SearchWarmer::waker),
        });
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pivote-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))?,
            );
        }
        let maintenance = config.maintenance.map(|m| {
            MaintenanceHandle::spawn(Arc::clone(&store), m.policy, m.target_shards, m.tick)
        });
        Ok(Server {
            shared,
            addr: local,
            workers,
            maintenance,
            warmer,
            warm_path: config.warm_path,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<LiveStore> {
        &self.shared.store
    }

    /// Whether a client has requested shutdown (or [`Server::shutdown`]
    /// began).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until a client issues `{"op":"shutdown"}`.
    pub fn wait_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::park_timeout(Duration::from_millis(10));
        }
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(mut maintenance) = self.maintenance.take() {
            maintenance.stop();
        }
        if let Some(mut warmer) = self.warmer.take() {
            warmer.stop();
        }
    }

    /// Graceful stop: stop accepting, join every worker, stop
    /// maintenance, and persist the density cache to the configured
    /// warm-state sidecar so a restart serves warm from the first query.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_threads();
        let store = &self.shared.store;
        let mut report = ShutdownReport {
            generation: store.generation(),
            warm_densities_saved: None,
            warm_error: None,
        };
        if let Some(path) = &self.warm_path {
            let fp = {
                let reader = store.read();
                backend_fingerprint(reader.backend())
            };
            match save_warm_state(store.cache(), fp, path) {
                Ok(()) => {
                    report.warm_densities_saved = Some(store.cache().cached_probability_count());
                }
                Err(e) => report.warm_error = Some(e),
            }
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // the kill path: join threads, persist nothing
        self.stop_threads();
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // a broken connection is the client's problem, not the
                // server's: drop it and accept the next one
                let _ = handle_conn(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::park_timeout(Duration::from_millis(1));
            }
            Err(_) => std::thread::park_timeout(Duration::from_millis(1)),
        }
    }
}

/// How often a blocked read wakes to check for shutdown and count idle
/// time. The socket read timeout — NOT the idle budget (that is
/// [`ServeConfig::idle_timeout`]).
const READ_TICK: Duration = Duration::from_millis(25);

fn handle_conn(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // without a read timeout, a client that connects and sends nothing
    // pins this worker in read_line forever — `workers` such clients
    // starve the whole pool and shutdown never reaches the thread
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // raw bytes, not a String: read_until keeps everything read so far
    // in the buffer across timeout retries, where read_line would drop
    // a partial read that happens to end mid-UTF-8-character
    let mut line = Vec::new();
    loop {
        line.clear();
        let mut idle = Duration::ZERO;
        // idle-retry loop: each timeout tick keeps the connection alive
        // (bytes already read stay accumulated in `line`), frees the
        // worker to notice shutdown, and charges the tick against the
        // idle budget. A connection must deliver a complete request line
        // within `idle_timeout`, which also caps a slow-loris trickling
        // bytes below line speed.
        let n = loop {
            match reader.read_until(b'\n', &mut line) {
                Ok(n) => break n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    idle += READ_TICK;
                    if idle >= shared.idle_timeout {
                        return Ok(()); // idle client: free the worker
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        if n == 0 && line.is_empty() {
            return Ok(()); // client hung up
        }
        let text = std::str::from_utf8(&line)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))?;
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_request(shared, trimmed);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Serve one request line. Any panic a request provokes below the
/// protocol layer is caught here and answered as `{"ok":false,...}` —
/// a hostile request may cost itself an error, never a worker thread.
/// (Writes stay safe to catch: a writer panic poisons the store lock
/// and later writes fail closed per [`pivote_core::StoreError`].)
fn handle_request(shared: &Shared, line: &str) -> String {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(shared, line)))
        .unwrap_or_else(|_| Reply::error("internal error serving this request").render())
}

fn dispatch(shared: &Shared, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return Reply::error(message).render(),
    };
    if request.is_deterministic_read() {
        return serve_read(shared, &request);
    }
    match request {
        Request::Rank { .. }
        | Request::Expand { .. }
        | Request::Heatmap { .. }
        | Request::Search { .. } => unreachable!("deterministic reads served above"),
        Request::Append { ntriples } => {
            if shared.read_only {
                Reply::error("read-only replica: writes go to the leader").render()
            } else {
                op_append(shared, &ntriples)
            }
        }
        Request::Retract { ntriples } => {
            if shared.read_only {
                Reply::error("read-only replica: writes go to the leader").render()
            } else {
                op_retract(shared, &ntriples)
            }
        }
        Request::Stats => op_stats(shared),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Reply::ok().with("stopping", Value::Bool(true)).render()
        }
    }
}

/// Serve one deterministic read op through the read context and the
/// response memo. The generation is pinned **before** the memo probe,
/// so a memoized response is only ever replayed at the exact generation
/// it was rendered at — bit-identical to recomputing it there. With
/// snapshots off the memo is bypassed entirely: lock mode is the
/// pre-PR-10 serving path, kept honest for A/B benchmarks.
fn serve_read(shared: &Shared, request: &Request) -> String {
    let ctx = read_ctx(shared);
    if !shared.snapshots {
        return compute_read(shared, &ctx, request);
    }
    let generation = ctx.generation();
    // the parsed request's Debug form is the canonical key: raw lines
    // with different key order or whitespace collapse to one entry
    let key = format!("{request:?}");
    if let Some(hit) = {
        let mut memo = shared.memo.lock().unwrap_or_else(|p| p.into_inner());
        memo.get(generation, &key)
    } {
        shared.memo_hits.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    shared.memo_misses.fetch_add(1, Ordering::Relaxed);
    let response = compute_read(shared, &ctx, request);
    let mut memo = shared.memo.lock().unwrap_or_else(|p| p.into_inner());
    memo.insert(generation, key, response.clone());
    response
}

/// Compute one deterministic read against an already-acquired context.
fn compute_read(shared: &Shared, ctx: &ReadCtx<'_>, request: &Request) -> String {
    match request {
        Request::Rank {
            seeds,
            k_features,
            k_entities,
        } => op_rank(shared, ctx, seeds, *k_features, *k_entities),
        Request::Expand {
            seeds,
            type_filter,
            k,
        } => op_expand(shared, ctx, seeds, type_filter.as_deref(), *k),
        Request::Heatmap {
            seeds,
            k_features,
            k_entities,
        } => op_heatmap(shared, ctx, seeds, *k_features, *k_entities),
        Request::Search { query, k } => op_search(shared, ctx, query, *k),
        _ => unreachable!("compute_read only handles deterministic reads"),
    }
}

/// Resolve seed names against one snapshot, erroring on the first
/// unknown name.
fn resolve_seeds(
    handle: &pivote_core::GraphHandle<'_>,
    seeds: &[String],
) -> Result<Vec<pivote_kg::EntityId>, String> {
    if seeds.is_empty() {
        return Err("`seeds` must not be empty".to_owned());
    }
    seeds
        .iter()
        .map(|name| {
            handle
                .entity(name)
                .ok_or_else(|| format!("unknown entity {name:?}"))
        })
        .collect()
}

fn op_rank(
    shared: &Shared,
    ctx: &ReadCtx<'_>,
    seeds: &[String],
    k_features: usize,
    k_entities: usize,
) -> String {
    let handle = ctx.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&SfQuery::from_seeds(ids), k_entities, k_features);
    Reply::ok()
        .num("generation", ctx.generation())
        .with(
            "features",
            scored_names(
                res.features
                    .iter()
                    .map(|rf| (handle.feature_display(rf.feature), rf.score)),
            ),
        )
        .with(
            "entities",
            scored_names(
                res.entities
                    .iter()
                    .map(|re| (handle.entity_name(re.entity).to_owned(), re.score)),
            ),
        )
        .render()
}

fn op_expand(
    shared: &Shared,
    ctx: &ReadCtx<'_>,
    seeds: &[String],
    type_filter: Option<&str>,
    k: usize,
) -> String {
    let handle = ctx.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let mut query = SfQuery::from_seeds(ids);
    if let Some(name) = type_filter {
        match handle.type_id(name) {
            Some(t) => query = query.with_type(t),
            None => return Reply::error(format!("unknown type {name:?}")).render(),
        }
    }
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&query, k, k);
    Reply::ok()
        .num("generation", ctx.generation())
        .with(
            "entities",
            scored_names(
                res.entities
                    .iter()
                    .map(|re| (handle.entity_name(re.entity).to_owned(), re.score)),
            ),
        )
        .render()
}

fn op_heatmap(
    shared: &Shared,
    ctx: &ReadCtx<'_>,
    seeds: &[String],
    k_features: usize,
    k_entities: usize,
) -> String {
    let handle = ctx.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&SfQuery::from_seeds(ids), k_entities, k_features);
    let axis: Vec<pivote_kg::EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    Reply::ok()
        .num("generation", ctx.generation())
        .with(
            "features",
            Value::Arr(
                res.features
                    .iter()
                    .map(|rf| Value::Str(handle.feature_display(rf.feature)))
                    .collect(),
            ),
        )
        .with(
            "entities",
            Value::Arr(
                axis.iter()
                    .map(|&e| Value::Str(handle.entity_name(e).to_owned()))
                    .collect(),
            ),
        )
        .with(
            "levels",
            Value::Arr(
                (0..hm.height())
                    .map(|row| {
                        Value::Arr(
                            (0..hm.width())
                                .map(|col| Value::Num(f64::from(hm.level(row, col))))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        )
        .with(
            "values",
            Value::Arr(
                (0..hm.height())
                    .map(|row| {
                        Value::Arr(
                            (0..hm.width())
                                .map(|col| Value::Num(hm.value(row, col)))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        )
        .render()
}

fn op_search(shared: &Shared, ctx: &ReadCtx<'_>, query: &str, k: usize) -> String {
    let hits = match ctx {
        // the snapshot path searches the pinned backend with engines
        // attached to the snapshot (usually prebuilt by the warmer), so
        // hits, names and generation all come from one immutable state
        ReadCtx::Snapshot(snap) => shared.search.search_prepared(snap, query, k),
        ReadCtx::Lock(_) => shared.search.search(&shared.store, query, k),
    };
    // entity names are append-only and ids are stable, so resolving the
    // hit names against this context can never mislabel a hit
    let handle = ctx.handle();
    Reply::ok()
        .num("generation", ctx.generation())
        .with(
            "hits",
            scored_names(
                hits.iter()
                    .map(|h| (handle.entity_name(h.entity).to_owned(), h.score)),
            ),
        )
        .render()
}

fn op_append(shared: &Shared, ntriples: &str) -> String {
    let delta = match parse_into_delta(ntriples) {
        Ok(delta) => delta,
        Err(e) => {
            // the parser's 1-based line within the submitted body
            return Reply::error(format!("N-Triples parse error: {}", e.message))
                .num("line", e.line as u64)
                .render();
        }
    };
    match shared.store.append(&delta) {
        Ok(applied) => {
            shared.kick_warmer();
            Reply::ok()
                .num("generation", applied.generation)
                .num(
                    "new_entities",
                    u64::from(applied.new_entities.end - applied.new_entities.start),
                )
                .num("added_relations", applied.added_relations as u64)
                .num("added_literals", applied.added_literals as u64)
                .render()
        }
        Err(e) => Reply::error(e.to_string()).render(),
    }
}

fn op_retract(shared: &Shared, ntriples: &str) -> String {
    let delta = match parse_removed_into_delta(ntriples) {
        Ok(delta) => delta,
        Err(e) => {
            // the parser's 1-based line within the submitted body
            return Reply::error(format!("N-Triples parse error: {}", e.message))
                .num("line", e.line as u64)
                .render();
        }
    };
    match shared.store.append(&delta) {
        Ok(applied) => {
            shared.kick_warmer();
            let removed =
                applied.removed_relations + applied.removed_literals + applied.removed_assertions;
            if removed == 0 && !delta.ops().is_empty() {
                // deleting nothing that exists is the client's error, and
                // answering it must not take the connection down
                return Reply::error("no stored statement matched the retract body")
                    .num("generation", applied.generation)
                    .render();
            }
            Reply::ok()
                .num("generation", applied.generation)
                .num("removed_relations", applied.removed_relations as u64)
                .num("removed_literals", applied.removed_literals as u64)
                .num("removed_assertions", applied.removed_assertions as u64)
                .render()
        }
        Err(e) => Reply::error(e.to_string()).render(),
    }
}

fn op_stats(shared: &Shared) -> String {
    let store = &shared.store;
    let reader = store.read();
    Reply::ok()
        .num("generation", reader.generation())
        .num("shard_count", reader.backend().shard_count() as u64)
        .num(
            "trailing_shards",
            reader.backend().trailing_shard_count() as u64,
        )
        .num("entities", reader.backend().entity_count() as u64)
        .num(
            "cached_probabilities",
            store.cache().cached_probability_count() as u64,
        )
        .num("cache_generation", store.cache().generation())
        .with("poisoned", Value::Bool(store.is_poisoned()))
        .with("read_only", Value::Bool(shared.read_only))
        .with("snapshots", Value::Bool(shared.snapshots))
        .num("memo_hits", shared.memo_hits.load(Ordering::Relaxed))
        .num("memo_misses", shared.memo_misses.load(Ordering::Relaxed))
        .num(
            "memo_entries",
            shared.memo.lock().unwrap_or_else(|p| p.into_inner()).len() as u64,
        )
        .num(
            "snapshot_reads",
            shared.snapshot_reads.load(Ordering::Relaxed),
        )
        .num("lock_reads", shared.lock_reads.load(Ordering::Relaxed))
        .render()
}

//! The server: a `std::net::TcpListener` + worker-thread pool around one
//! shared [`LiveStore`].
//!
//! Every worker accepts connections from the same (non-blocking)
//! listener and serves one connection at a time, line by line: read a
//! request line, execute it against a guard-scoped snapshot of the
//! store, write one response line, flush. All workers share
//!
//! - one [`LiveStore`] (graph + the generation-stamped `p(π|c)`
//!   [`SharedCache`](pivote_core::SharedCache)), so a density memoized
//!   for any connection is a hit for every later query on any
//!   connection, and
//! - one [`LiveSearchCache`], so the keyword index is built once per
//!   store generation, not once per request.
//!
//! The server also owns the background [`MaintenanceHandle`] (when
//! configured): compaction is scheduled off every request path, exactly
//! as the library contract prescribes.
//!
//! **Shutdown semantics.** A `{"op":"shutdown"}` request is
//! acknowledged, then the server stops accepting; in-flight connections
//! finish their current request. [`Server::shutdown`] (the graceful
//! path) persists the density cache as a warm-state sidecar
//! ([`pivote_core::save_warm_state`]) when a `warm_path` is configured,
//! so the next process starts with every memoized density intact —
//! [`store_with_warm_state`] is the matching startup half. Dropping the
//! [`Server`] without calling `shutdown` is the *kill* path: threads are
//! joined but nothing is persisted.
//!
//! A panic while serving one request poisons nothing global: writes
//! fail closed per the store's poisoning policy
//! ([`pivote_core::StoreError`]) and reads keep answering, so the
//! process keeps serving the last consistent snapshot.

use crate::protocol::{scored_names, Reply, Request};
use pivote_core::{
    load_warm_state, save_warm_state, Expander, HeatMap, LiveStore, MaintenanceHandle,
    RankingConfig, SfQuery, WarmStateError,
};
use pivote_explore::LiveSearchCache;
use pivote_kg::{parse_into_delta, parse_removed_into_delta, CompactionPolicy, GraphBackend};
use pivote_search::SearchConfig;
use serde::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Background compaction driven by the server's own
/// [`MaintenanceHandle`].
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// When the tail is degenerate enough to repartition.
    pub policy: CompactionPolicy,
    /// Shard count a compaction pass re-partitions to.
    pub target_shards: usize,
    /// Poll interval of the maintenance thread.
    pub tick: Duration,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads accepting and serving connections.
    pub workers: usize,
    /// Ranking model configuration shared by rank/expand/heatmap.
    pub ranking: RankingConfig,
    /// Keyword-search engine configuration.
    pub search: SearchConfig,
    /// Warm-state sidecar persisted by [`Server::shutdown`]; `None`
    /// skips persistence (pair with [`store_with_warm_state`] at
    /// startup).
    pub warm_path: Option<PathBuf>,
    /// Background compaction; `None` leaves the partition to grow.
    pub maintenance: Option<MaintenanceConfig>,
    /// Serve reads only: `append`/`retract` are answered with a
    /// per-request error instead of mutating the store. The replica
    /// server mode — a follower's store is written exclusively by the
    /// delta-log tailer, never by clients.
    pub read_only: bool,
    /// How long a connection may sit without delivering a complete
    /// request line before the worker closes it and serves someone
    /// else. Bounds the damage of idle (and slow-loris) clients: with
    /// `workers` connections each pinned by a silent peer, the pool
    /// would otherwise starve forever.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            ranking: RankingConfig::default(),
            search: SearchConfig::default(),
            warm_path: None,
            maintenance: None,
            read_only: false,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// What a graceful [`Server::shutdown`] did.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Store generation at shutdown.
    pub generation: u64,
    /// Densities persisted to the warm sidecar (`None` when no
    /// `warm_path` was configured or the save failed).
    pub warm_densities_saved: Option<usize>,
    /// The warm-state save error, when one occurred.
    pub warm_error: Option<WarmStateError>,
}

/// The snapshot fingerprint of whatever layout the backend holds — the
/// pairing key between a graph and its warm-state sidecar. The sharded
/// layout fingerprints its union rebuild, which by the append==rebuild
/// guarantee equals the single graph over the same logical content.
pub fn backend_fingerprint(backend: &GraphBackend) -> u64 {
    backend.fingerprint()
}

/// Open a [`LiveStore`] over `backend`, resuming the density cache from
/// the warm-state sidecar at `warm_path` when it matches this graph.
/// Returns the store and whether it started warm; any sidecar problem
/// (missing file, stale fingerprint, corrupt bytes) silently starts
/// cold — the sidecar is a latency artifact, never a correctness input.
pub fn store_with_warm_state(
    backend: impl Into<GraphBackend>,
    threads: usize,
    warm_path: &Path,
) -> (Arc<LiveStore>, bool) {
    let backend = backend.into();
    let fp = backend_fingerprint(&backend);
    match load_warm_state(warm_path, fp) {
        Ok(cache) => (
            Arc::new(LiveStore::with_cache(backend, threads, cache)),
            true,
        ),
        Err(_) => (Arc::new(LiveStore::with_threads(backend, threads)), false),
    }
}

struct Shared {
    store: Arc<LiveStore>,
    search: LiveSearchCache,
    ranking: RankingConfig,
    shutdown: AtomicBool,
    read_only: bool,
    idle_timeout: Duration,
}

/// A running server. Keep it alive for as long as you serve; consume it
/// with [`Server::shutdown`] for the graceful (warm-state-persisting)
/// stop, or drop it for the kill path.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    maintenance: Option<MaintenanceHandle>,
    warm_path: Option<PathBuf>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the worker pool over `store`.
    pub fn bind(addr: &str, store: Arc<LiveStore>, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: Arc::clone(&store),
            search: LiveSearchCache::new(config.search),
            ranking: config.ranking,
            shutdown: AtomicBool::new(false),
            read_only: config.read_only,
            idle_timeout: config.idle_timeout,
        });
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pivote-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))?,
            );
        }
        let maintenance = config.maintenance.map(|m| {
            MaintenanceHandle::spawn(Arc::clone(&store), m.policy, m.target_shards, m.tick)
        });
        Ok(Server {
            shared,
            addr: local,
            workers,
            maintenance,
            warm_path: config.warm_path,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<LiveStore> {
        &self.shared.store
    }

    /// Whether a client has requested shutdown (or [`Server::shutdown`]
    /// began).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until a client issues `{"op":"shutdown"}`.
    pub fn wait_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::park_timeout(Duration::from_millis(10));
        }
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(mut maintenance) = self.maintenance.take() {
            maintenance.stop();
        }
    }

    /// Graceful stop: stop accepting, join every worker, stop
    /// maintenance, and persist the density cache to the configured
    /// warm-state sidecar so a restart serves warm from the first query.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_threads();
        let store = &self.shared.store;
        let mut report = ShutdownReport {
            generation: store.generation(),
            warm_densities_saved: None,
            warm_error: None,
        };
        if let Some(path) = &self.warm_path {
            let fp = {
                let reader = store.read();
                backend_fingerprint(reader.backend())
            };
            match save_warm_state(store.cache(), fp, path) {
                Ok(()) => {
                    report.warm_densities_saved = Some(store.cache().cached_probability_count());
                }
                Err(e) => report.warm_error = Some(e),
            }
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // the kill path: join threads, persist nothing
        self.stop_threads();
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // a broken connection is the client's problem, not the
                // server's: drop it and accept the next one
                let _ = handle_conn(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::park_timeout(Duration::from_millis(1));
            }
            Err(_) => std::thread::park_timeout(Duration::from_millis(1)),
        }
    }
}

/// How often a blocked read wakes to check for shutdown and count idle
/// time. The socket read timeout — NOT the idle budget (that is
/// [`ServeConfig::idle_timeout`]).
const READ_TICK: Duration = Duration::from_millis(25);

fn handle_conn(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // without a read timeout, a client that connects and sends nothing
    // pins this worker in read_line forever — `workers` such clients
    // starve the whole pool and shutdown never reaches the thread
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // raw bytes, not a String: read_until keeps everything read so far
    // in the buffer across timeout retries, where read_line would drop
    // a partial read that happens to end mid-UTF-8-character
    let mut line = Vec::new();
    loop {
        line.clear();
        let mut idle = Duration::ZERO;
        // idle-retry loop: each timeout tick keeps the connection alive
        // (bytes already read stay accumulated in `line`), frees the
        // worker to notice shutdown, and charges the tick against the
        // idle budget. A connection must deliver a complete request line
        // within `idle_timeout`, which also caps a slow-loris trickling
        // bytes below line speed.
        let n = loop {
            match reader.read_until(b'\n', &mut line) {
                Ok(n) => break n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    idle += READ_TICK;
                    if idle >= shared.idle_timeout {
                        return Ok(()); // idle client: free the worker
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        if n == 0 && line.is_empty() {
            return Ok(()); // client hung up
        }
        let text = std::str::from_utf8(&line)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))?;
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_request(shared, trimmed);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Serve one request line. Any panic a request provokes below the
/// protocol layer is caught here and answered as `{"ok":false,...}` —
/// a hostile request may cost itself an error, never a worker thread.
/// (Writes stay safe to catch: a writer panic poisons the store lock
/// and later writes fail closed per [`pivote_core::StoreError`].)
fn handle_request(shared: &Shared, line: &str) -> String {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(shared, line)))
        .unwrap_or_else(|_| Reply::error("internal error serving this request").render())
}

fn dispatch(shared: &Shared, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return Reply::error(message).render(),
    };
    match request {
        Request::Rank {
            seeds,
            k_features,
            k_entities,
        } => op_rank(shared, &seeds, k_features, k_entities),
        Request::Expand {
            seeds,
            type_filter,
            k,
        } => op_expand(shared, &seeds, type_filter.as_deref(), k),
        Request::Heatmap {
            seeds,
            k_features,
            k_entities,
        } => op_heatmap(shared, &seeds, k_features, k_entities),
        Request::Search { query, k } => op_search(shared, &query, k),
        Request::Append { ntriples } => {
            if shared.read_only {
                Reply::error("read-only replica: writes go to the leader").render()
            } else {
                op_append(shared, &ntriples)
            }
        }
        Request::Retract { ntriples } => {
            if shared.read_only {
                Reply::error("read-only replica: writes go to the leader").render()
            } else {
                op_retract(shared, &ntriples)
            }
        }
        Request::Stats => op_stats(shared),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Reply::ok().with("stopping", Value::Bool(true)).render()
        }
    }
}

/// Resolve seed names against one snapshot, erroring on the first
/// unknown name.
fn resolve_seeds(
    handle: &pivote_core::GraphHandle<'_>,
    seeds: &[String],
) -> Result<Vec<pivote_kg::EntityId>, String> {
    if seeds.is_empty() {
        return Err("`seeds` must not be empty".to_owned());
    }
    seeds
        .iter()
        .map(|name| {
            handle
                .entity(name)
                .ok_or_else(|| format!("unknown entity {name:?}"))
        })
        .collect()
}

fn op_rank(shared: &Shared, seeds: &[String], k_features: usize, k_entities: usize) -> String {
    let reader = shared.store.read();
    let handle = reader.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&SfQuery::from_seeds(ids), k_entities, k_features);
    Reply::ok()
        .num("generation", reader.generation())
        .with(
            "features",
            scored_names(
                res.features
                    .iter()
                    .map(|rf| (handle.feature_display(rf.feature), rf.score)),
            ),
        )
        .with(
            "entities",
            scored_names(
                res.entities
                    .iter()
                    .map(|re| (handle.entity_name(re.entity).to_owned(), re.score)),
            ),
        )
        .render()
}

fn op_expand(shared: &Shared, seeds: &[String], type_filter: Option<&str>, k: usize) -> String {
    let reader = shared.store.read();
    let handle = reader.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let mut query = SfQuery::from_seeds(ids);
    if let Some(name) = type_filter {
        match handle.type_id(name) {
            Some(t) => query = query.with_type(t),
            None => return Reply::error(format!("unknown type {name:?}")).render(),
        }
    }
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&query, k, k);
    Reply::ok()
        .num("generation", reader.generation())
        .with(
            "entities",
            scored_names(
                res.entities
                    .iter()
                    .map(|re| (handle.entity_name(re.entity).to_owned(), re.score)),
            ),
        )
        .render()
}

fn op_heatmap(shared: &Shared, seeds: &[String], k_features: usize, k_entities: usize) -> String {
    let reader = shared.store.read();
    let handle = reader.handle();
    let ids = match resolve_seeds(&handle, seeds) {
        Ok(ids) => ids,
        Err(message) => return Reply::error(message).render(),
    };
    let expander = Expander::with_handle(handle.clone(), shared.ranking);
    let res = expander.expand(&SfQuery::from_seeds(ids), k_entities, k_features);
    let axis: Vec<pivote_kg::EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    Reply::ok()
        .num("generation", reader.generation())
        .with(
            "features",
            Value::Arr(
                res.features
                    .iter()
                    .map(|rf| Value::Str(handle.feature_display(rf.feature)))
                    .collect(),
            ),
        )
        .with(
            "entities",
            Value::Arr(
                axis.iter()
                    .map(|&e| Value::Str(handle.entity_name(e).to_owned()))
                    .collect(),
            ),
        )
        .with(
            "levels",
            Value::Arr(
                (0..hm.height())
                    .map(|row| {
                        Value::Arr(
                            (0..hm.width())
                                .map(|col| Value::Num(f64::from(hm.level(row, col))))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        )
        .with(
            "values",
            Value::Arr(
                (0..hm.height())
                    .map(|row| {
                        Value::Arr(
                            (0..hm.width())
                                .map(|col| Value::Num(hm.value(row, col)))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        )
        .render()
}

fn op_search(shared: &Shared, query: &str, k: usize) -> String {
    let hits = shared.search.search(&shared.store, query, k);
    // entity names are append-only and ids are stable, so resolving the
    // hit names under a second read guard can never mislabel a hit
    let reader = shared.store.read();
    let handle = reader.handle();
    Reply::ok()
        .num("generation", reader.generation())
        .with(
            "hits",
            scored_names(
                hits.iter()
                    .map(|h| (handle.entity_name(h.entity).to_owned(), h.score)),
            ),
        )
        .render()
}

fn op_append(shared: &Shared, ntriples: &str) -> String {
    let delta = match parse_into_delta(ntriples) {
        Ok(delta) => delta,
        Err(e) => {
            // the parser's 1-based line within the submitted body
            return Reply::error(format!("N-Triples parse error: {}", e.message))
                .num("line", e.line as u64)
                .render();
        }
    };
    match shared.store.append(&delta) {
        Ok(applied) => Reply::ok()
            .num("generation", applied.generation)
            .num(
                "new_entities",
                u64::from(applied.new_entities.end - applied.new_entities.start),
            )
            .num("added_relations", applied.added_relations as u64)
            .num("added_literals", applied.added_literals as u64)
            .render(),
        Err(e) => Reply::error(e.to_string()).render(),
    }
}

fn op_retract(shared: &Shared, ntriples: &str) -> String {
    let delta = match parse_removed_into_delta(ntriples) {
        Ok(delta) => delta,
        Err(e) => {
            // the parser's 1-based line within the submitted body
            return Reply::error(format!("N-Triples parse error: {}", e.message))
                .num("line", e.line as u64)
                .render();
        }
    };
    match shared.store.append(&delta) {
        Ok(applied) => {
            let removed =
                applied.removed_relations + applied.removed_literals + applied.removed_assertions;
            if removed == 0 && !delta.ops().is_empty() {
                // deleting nothing that exists is the client's error, and
                // answering it must not take the connection down
                return Reply::error("no stored statement matched the retract body")
                    .num("generation", applied.generation)
                    .render();
            }
            Reply::ok()
                .num("generation", applied.generation)
                .num("removed_relations", applied.removed_relations as u64)
                .num("removed_literals", applied.removed_literals as u64)
                .num("removed_assertions", applied.removed_assertions as u64)
                .render()
        }
        Err(e) => Reply::error(e.to_string()).render(),
    }
}

fn op_stats(shared: &Shared) -> String {
    let store = &shared.store;
    let reader = store.read();
    Reply::ok()
        .num("generation", reader.generation())
        .num("shard_count", reader.backend().shard_count() as u64)
        .num(
            "trailing_shards",
            reader.backend().trailing_shard_count() as u64,
        )
        .num("entities", reader.backend().entity_count() as u64)
        .num(
            "cached_probabilities",
            store.cache().cached_probability_count() as u64,
        )
        .num("cache_generation", store.cache().generation())
        .with("poisoned", Value::Bool(store.is_poisoned()))
        .with("read_only", Value::Bool(shared.read_only))
        .render()
}

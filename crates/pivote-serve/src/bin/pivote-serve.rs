//! Standalone server binary.
//!
//! ```text
//! pivote-serve [--addr 127.0.0.1:7878] [--data graph.nt | --tiny]
//!              [--shards N] [--workers N] [--warm sidecar.warm]
//! ```
//!
//! Loads an N-Triples graph (or the tiny synthetic one), optionally
//! resumes the density cache from a warm-state sidecar, serves until a
//! client sends `{"op":"shutdown"}`, then persists the warm state back.

use pivote_kg::{generate, DatagenConfig, GraphBackend, ShardedGraph};
use pivote_serve::{store_with_warm_state, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    data: Option<PathBuf>,
    shards: usize,
    workers: usize,
    warm: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        data: None,
        shards: 1,
        workers: 4,
        warm: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data" => args.data = Some(PathBuf::from(value("--data")?)),
            "--tiny" => args.data = None,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--warm" => args.warm = Some(PathBuf::from(value("--warm")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("pivote-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kg = match &args.data {
        Some(path) => {
            let nt = match std::fs::read_to_string(path) {
                Ok(nt) => nt,
                Err(e) => {
                    eprintln!("pivote-serve: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match pivote_kg::parse(&nt) {
                Ok(kg) => kg,
                Err(e) => {
                    eprintln!("pivote-serve: {}:{}: {}", path.display(), e.line, e.message);
                    return ExitCode::FAILURE;
                }
            }
        }
        None => generate(&DatagenConfig::tiny()),
    };
    let backend: GraphBackend = if args.shards > 1 {
        ShardedGraph::from_graph(&kg, args.shards).into()
    } else {
        kg.into()
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (store, warm) = match &args.warm {
        Some(path) => store_with_warm_state(backend, threads, path),
        None => (
            Arc::new(pivote_core::LiveStore::with_threads(backend, threads)),
            false,
        ),
    };

    let config = ServeConfig {
        workers: args.workers,
        warm_path: args.warm.clone(),
        ..ServeConfig::default()
    };
    let server = match Server::bind(&args.addr, store, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pivote-serve: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pivote-serve: listening on {} ({} start, {} workers)",
        server.local_addr(),
        if warm { "warm" } else { "cold" },
        args.workers,
    );
    server.wait_shutdown();
    let report = server.shutdown();
    match (report.warm_densities_saved, report.warm_error) {
        (Some(n), _) => eprintln!(
            "pivote-serve: stopped at generation {}; {n} densities persisted",
            report.generation
        ),
        (None, Some(e)) => eprintln!(
            "pivote-serve: stopped at generation {}; warm-state save failed: {e}",
            report.generation
        ),
        (None, None) => eprintln!("pivote-serve: stopped at generation {}", report.generation),
    }
    ExitCode::SUCCESS
}

//! Standalone server binary.
//!
//! ```text
//! pivote-serve [--addr 127.0.0.1:7878] [--data graph.nt | --tiny]
//!              [--shards N] [--workers N] [--warm sidecar.warm]
//!              [--log deltas.wal | --replica deltas.wal]
//! ```
//!
//! Loads an N-Triples graph (or the tiny synthetic one), optionally
//! resumes the density cache from a warm-state sidecar, serves until a
//! client sends `{"op":"shutdown"}`, then persists the warm state back.
//!
//! `--log` makes this server a **leader**: every accepted append,
//! retract and compaction is recorded in a durable delta log before it
//! is applied. `--replica` makes it a read-only **follower** of such a
//! log: it tails the file in the background, refuses `append`/`retract`
//! over the wire, and serves reads that are fingerprint-equal to the
//! leader at every synced generation. The two flags are mutually
//! exclusive.

use pivote_core::{ReplicaHandle, ReplicaStore};
use pivote_kg::{generate, DatagenConfig, GraphBackend, ShardedGraph};
use pivote_serve::{store_with_warm_state, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    data: Option<PathBuf>,
    shards: usize,
    workers: usize,
    warm: Option<PathBuf>,
    log: Option<PathBuf>,
    replica: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        data: None,
        shards: 1,
        workers: 4,
        warm: None,
        log: None,
        replica: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data" => args.data = Some(PathBuf::from(value("--data")?)),
            "--tiny" => args.data = None,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--warm" => args.warm = Some(PathBuf::from(value("--warm")?)),
            "--log" => args.log = Some(PathBuf::from(value("--log")?)),
            "--replica" => args.replica = Some(PathBuf::from(value("--replica")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.log.is_some() && args.replica.is_some() {
        return Err("--log and --replica are mutually exclusive".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("pivote-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kg = match &args.data {
        Some(path) => {
            let nt = match std::fs::read_to_string(path) {
                Ok(nt) => nt,
                Err(e) => {
                    eprintln!("pivote-serve: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match pivote_kg::parse(&nt) {
                Ok(kg) => kg,
                Err(e) => {
                    eprintln!("pivote-serve: {}:{}: {}", path.display(), e.line, e.message);
                    return ExitCode::FAILURE;
                }
            }
        }
        None => generate(&DatagenConfig::tiny()),
    };
    let backend: GraphBackend = if args.shards > 1 {
        ShardedGraph::from_graph(&kg, args.shards).into()
    } else {
        kg.into()
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // follower: build the store from the delta log and keep tailing it
    // in the background for as long as the server runs
    let mut replica_handle: Option<ReplicaHandle> = None;
    let (store, warm) = if let Some(path) = &args.replica {
        let mut replica = match ReplicaStore::open(backend, threads, path) {
            Ok(replica) => replica,
            Err(e) => {
                eprintln!("pivote-serve: replica {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let caught_up = match replica.sync() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("pivote-serve: replica sync {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "pivote-serve: replica caught up ({caught_up} records, generation {})",
            replica.synced_generation()
        );
        let handle = ReplicaHandle::spawn(replica, Duration::from_millis(20));
        let store = Arc::clone(handle.store());
        replica_handle = Some(handle);
        (store, false)
    } else {
        match &args.warm {
            Some(path) => store_with_warm_state(backend, threads, path),
            None => (
                Arc::new(pivote_core::LiveStore::with_threads(backend, threads)),
                false,
            ),
        }
    };

    // leader: record every accepted write in the delta log before it is
    // applied; an existing log is replayed first (crash recovery), then
    // appended to
    if let Some(path) = &args.log {
        if path.exists() {
            let report = match pivote_core::recover(
                {
                    let reader = store.read();
                    reader.backend().clone()
                },
                threads,
                path,
            ) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("pivote-serve: recover {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "pivote-serve: replayed {} logged records{}",
                report.records_applied,
                if report.truncated_tail {
                    " (torn tail record ignored)"
                } else {
                    ""
                }
            );
            let (writer, _torn) = match pivote_kg::WalWriter::resume(path) {
                Ok(resumed) => resumed,
                Err(e) => {
                    eprintln!("pivote-serve: resume log {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = report.store.attach_wal(writer) {
                eprintln!("pivote-serve: attach log {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            // replace the freshly-loaded store with the recovered one:
            // serve the replayed state, not the pre-crash snapshot
            return run(report.store, args, warm, replica_handle);
        }
        if let Err(e) = store.log_to(path) {
            eprintln!("pivote-serve: log {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    run(store, args, warm, replica_handle)
}

fn run(
    store: Arc<pivote_core::LiveStore>,
    args: Args,
    warm: bool,
    replica_handle: Option<ReplicaHandle>,
) -> ExitCode {
    let config = ServeConfig {
        workers: args.workers,
        warm_path: args.warm.clone(),
        read_only: replica_handle.is_some(),
        ..ServeConfig::default()
    };
    let server = match Server::bind(&args.addr, store, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pivote-serve: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pivote-serve: listening on {} ({} start, {} workers)",
        server.local_addr(),
        if warm { "warm" } else { "cold" },
        args.workers,
    );
    server.wait_shutdown();
    let report = server.shutdown();
    if let Some(mut handle) = replica_handle {
        if let Some(e) = handle.last_error() {
            eprintln!("pivote-serve: replica tailer reported: {e}");
        }
        handle.stop();
    }
    match (report.warm_densities_saved, report.warm_error) {
        (Some(n), _) => eprintln!(
            "pivote-serve: stopped at generation {}; {n} densities persisted",
            report.generation
        ),
        (None, Some(e)) => eprintln!(
            "pivote-serve: stopped at generation {}; warm-state save failed: {e}",
            report.generation
        ),
        (None, None) => eprintln!("pivote-serve: stopped at generation {}", report.generation),
    }
    ExitCode::SUCCESS
}

//! A minimal blocking client for the line-JSON protocol — what the eval
//! driver, the CI serve leg and the integration tests speak through.

use serde::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection: send a request line, read a response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one raw request line, return the raw response line (without
    /// the trailing newline).
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send one request line and parse the response object.
    pub fn request(&mut self, line: &str) -> io::Result<Value> {
        let raw = self.request_raw(line)?;
        serde_json::from_str(&raw).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response {raw:?}: {e}"),
            )
        })
    }

    fn request_obj(&mut self, fields: Vec<(&str, Value)>) -> io::Result<Value> {
        let obj = Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect());
        let line = serde_json::to_string(&obj)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.request(&line)
    }

    /// `{"op":"rank", ...}` — ranked features and entities for seeds.
    pub fn rank(
        &mut self,
        seeds: &[&str],
        k_features: usize,
        k_entities: usize,
    ) -> io::Result<Value> {
        self.request_obj(vec![
            ("op", Value::Str("rank".to_owned())),
            ("seeds", names(seeds)),
            ("k_features", Value::Num(k_features as f64)),
            ("k_entities", Value::Num(k_entities as f64)),
        ])
    }

    /// `{"op":"expand", ...}` — entity-set expansion.
    pub fn expand(
        &mut self,
        seeds: &[&str],
        type_filter: Option<&str>,
        k: usize,
    ) -> io::Result<Value> {
        let mut fields = vec![
            ("op", Value::Str("expand".to_owned())),
            ("seeds", names(seeds)),
            ("k", Value::Num(k as f64)),
        ];
        if let Some(t) = type_filter {
            fields.push(("type", Value::Str(t.to_owned())));
        }
        self.request_obj(fields)
    }

    /// `{"op":"heatmap", ...}` — the entity × feature correlation matrix.
    pub fn heatmap(
        &mut self,
        seeds: &[&str],
        k_features: usize,
        k_entities: usize,
    ) -> io::Result<Value> {
        self.request_obj(vec![
            ("op", Value::Str("heatmap".to_owned())),
            ("seeds", names(seeds)),
            ("k_features", Value::Num(k_features as f64)),
            ("k_entities", Value::Num(k_entities as f64)),
        ])
    }

    /// `{"op":"search", ...}` — keyword search.
    pub fn search(&mut self, query: &str, k: usize) -> io::Result<Value> {
        self.request_obj(vec![
            ("op", Value::Str("search".to_owned())),
            ("query", Value::Str(query.to_owned())),
            ("k", Value::Num(k as f64)),
        ])
    }

    /// `{"op":"append", ...}` — append an N-Triples delta.
    pub fn append(&mut self, ntriples: &str) -> io::Result<Value> {
        self.request_obj(vec![
            ("op", Value::Str("append".to_owned())),
            ("ntriples", Value::Str(ntriples.to_owned())),
        ])
    }

    /// `{"op":"retract", ...}` — retract the statements of an N-Triples
    /// body.
    pub fn retract(&mut self, ntriples: &str) -> io::Result<Value> {
        self.request_obj(vec![
            ("op", Value::Str("retract".to_owned())),
            ("ntriples", Value::Str(ntriples.to_owned())),
        ])
    }

    /// `{"op":"stats"}` — store/cache observability snapshot.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.request_obj(vec![("op", Value::Str("stats".to_owned()))])
    }

    /// `{"op":"shutdown"}` — request a graceful server stop.
    pub fn shutdown(&mut self) -> io::Result<Value> {
        self.request_obj(vec![("op", Value::Str("shutdown".to_owned()))])
    }
}

fn names(items: &[&str]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str((*s).to_owned())).collect())
}

/// `true` iff the response object says `"ok": true`.
pub fn response_ok(v: &Value) -> bool {
    matches!(v.field_opt("ok"), Value::Bool(true))
}

/// Extract `[[name, score], ...]` from a response field.
pub fn scored_list(v: &Value, field: &str) -> Vec<(String, f64)> {
    let Value::Arr(items) = v.field_opt(field) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| match item {
            Value::Arr(pair) => match (pair.first(), pair.get(1)) {
                (Some(Value::Str(name)), Some(Value::Num(score))) => Some((name.clone(), *score)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// Extract a numeric response field (e.g. `"generation"`), when present
/// and integral.
pub fn num_field(v: &Value, field: &str) -> Option<u64> {
    match v.field_opt(field) {
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

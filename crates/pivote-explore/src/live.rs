//! Live exploration sessions: explore a graph that grows mid-session.
//!
//! A [`LiveSession`] drives the full [`Session`] interaction loop over a
//! [`LiveGraph`]: every user action runs against a consistent read-locked
//! snapshot, and [`LiveSession::append`] grows the graph *between*
//! actions — the paper's fixed-snapshot exploration model extended to a
//! store serving live traffic. The session's durable state (timeline,
//! exploratory path, current query, action log) survives appends; the
//! per-snapshot machinery (query context, extent handles) is rebuilt per
//! action from the live graph's [`SharedCache`](pivote_core::SharedCache),
//! so untouched `p(π|c)` densities stay warm across generations. The
//! keyword-search index is cached per generation and re-indexed only when
//! an append actually happened.
//!
//! Everything a live session does — actions *and* appends — is recorded
//! in a [`LiveLog`], so [`replay_live`](crate::replay::replay_live) can
//! reproduce an entire live exploration (growth included) from the same
//! base graph.
//!
//! [`LiveShardedSession`] is the sharded sibling over a
//! [`LiveShardedGraph`]: the same contract, extended to partitions that
//! are **re-partitioned mid-session** — [`LiveShardedSession::compact`]
//! records a [`LiveEvent::Compact`] and
//! [`replay_live_sharded`](crate::replay::replay_live_sharded) replays
//! growth *and* compaction bit-identically.

use crate::events::UserAction;
use crate::path::ExplorationPath;
use crate::replay::ActionLog;
use crate::session::{SearchBackend, Session, SessionConfig, SessionState, ViewState};
use crate::timeline::Timeline;
use pivote_core::{LiveGraph, LiveShardedGraph};
use pivote_kg::{AppliedDelta, CompactionReceipt, DeltaBatch};
use pivote_search::SearchEngine;
use serde::{Deserialize, Serialize};

/// One event of a live session: a user action, a graph append, or a
/// compaction of the backing sharded partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LiveEvent {
    /// A user action applied to the session.
    Action(UserAction),
    /// A delta batch appended to the live graph.
    Append(DeltaBatch),
    /// A re-partition of the backing [`LiveShardedGraph`] to
    /// `target_shards` fresh range shards. Compaction is
    /// answer-preserving, so replaying it reproduces the exact rankings;
    /// on a single-graph replay target it is a no-op (a single graph is
    /// always one partition).
    Compact {
        /// The shard count the graph was re-partitioned to.
        target_shards: usize,
    },
}

/// The ordered record of everything a live session did — the replayable
/// artifact of an exploration over a growing graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveLog {
    /// Events in application order.
    pub events: Vec<LiveEvent>,
}

impl LiveLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("live log serializes")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Run one action on a transient [`Session`] over a read-guard handle,
/// moving the durable state (timeline/path/query/log) and the rendered
/// view in and back out without copies — the shared half of both live
/// sessions' `apply`. Returns the dissolved [`SearchBackend`] so the
/// caller can stash its engine(s) for the next action.
fn drive_transient(
    state: &mut SessionState,
    log: &mut ActionLog,
    view: &mut ViewState,
    mut session: Session<'_>,
    action: UserAction,
) -> SearchBackend {
    let state_in = std::mem::replace(
        state,
        SessionState {
            timeline: Timeline::new(),
            path: ExplorationPath::new(),
            query: Default::default(),
        },
    );
    session.import_state(
        state_in,
        std::mem::take(log),
        std::mem::replace(view, ViewState::empty()),
    );
    session.apply(action);
    let (state_out, log_out, view_out, search) = session.dissolve();
    *state = state_out;
    *log = log_out;
    *view = view_out;
    search
}

/// An exploration session over a [`LiveGraph`] that may grow mid-session.
pub struct LiveSession<'g> {
    live: &'g LiveGraph,
    config: SessionConfig,
    state: SessionState,
    log: ActionLog,
    view: ViewState,
    /// Search index cached with the generation it was built at;
    /// re-indexed lazily after an append.
    search: Option<(u64, SearchEngine)>,
    events: LiveLog,
}

impl<'g> LiveSession<'g> {
    /// A fresh live session over `live`.
    pub fn new(live: &'g LiveGraph, config: SessionConfig) -> Self {
        Self {
            live,
            config,
            state: SessionState {
                timeline: Timeline::new(),
                path: ExplorationPath::new(),
                query: Default::default(),
            },
            log: ActionLog::new(),
            view: ViewState::empty(),
            search: None,
            events: LiveLog::new(),
        }
    }

    /// The live graph under exploration.
    pub fn live(&self) -> &'g LiveGraph {
        self.live
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// The durable session state (timeline, path, current query).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The user-action log (appends excluded; see [`LiveSession::events`]).
    pub fn action_log(&self) -> &ActionLog {
        &self.log
    }

    /// Every event — actions and appends — in order.
    pub fn events(&self) -> &LiveLog {
        &self.events
    }

    /// Apply one user action against the current graph snapshot and
    /// return the updated view. The heavy lifting runs on a transient
    /// [`Session`] scoped to a read guard; timeline/path/query/log and
    /// the rendered view **move** in and back out (no per-action copies
    /// of the session history), and the live graph's shared cache keeps
    /// densities warm.
    pub fn apply(&mut self, action: UserAction) -> &ViewState {
        self.events.events.push(LiveEvent::Action(action.clone()));
        let reader = self.live.read();
        let generation = reader.generation();
        let engine = match self.search.take() {
            Some((built_at, engine)) if built_at == generation => engine,
            _ => SearchEngine::build(reader.kg(), self.config.search),
        };
        let session = Session::with_single_engine(reader.handle(), self.config, engine);
        let search = drive_transient(
            &mut self.state,
            &mut self.log,
            &mut self.view,
            session,
            action,
        );
        let SearchBackend::Single(engine) = search else {
            unreachable!("live sessions run on the single backend")
        };
        self.search = Some((generation, *engine));
        &self.view
    }

    /// Append a delta to the live graph (recorded in the event log). The
    /// view is *not* recomputed — like every store mutation it becomes
    /// visible at the next action, keeping actions the only points where
    /// the interface changes under the user.
    pub fn append(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        self.events.events.push(LiveEvent::Append(delta.clone()));
        self.live.append(delta)
    }

    /// Convenience: submit a keyword query.
    pub fn submit_keywords(&mut self, q: &str) -> &ViewState {
        self.apply(UserAction::SubmitKeywords { query: q.into() })
    }

    /// Convenience: click an entity (investigation).
    pub fn click_entity(&mut self, entity: pivote_kg::EntityId) -> &ViewState {
        self.apply(UserAction::ClickEntity { entity })
    }
}

/// An exploration session over a [`LiveShardedGraph`] that may grow
/// *and be re-partitioned* mid-session — the sharded sibling of
/// [`LiveSession`], with the same durable-state contract: timeline,
/// exploratory path, query and log survive appends **and compactions**
/// untouched, because compaction changes no global id and no answer.
/// The per-shard search-engine set is cached **per shard**: after an
/// append, only the shards the delta actually touched (plus the new
/// trailing shard) are re-indexed; a compaction starts a new epoch and
/// re-indexes the fresh partition wholesale.
pub struct LiveShardedSession<'g> {
    live: &'g LiveShardedGraph,
    config: SessionConfig,
    state: SessionState,
    log: ActionLog,
    view: ViewState,
    /// Per-shard search engines, each tagged with the local graph
    /// generation it was built at, all tagged with the compaction epoch.
    /// Within one epoch shards are only ever appended, so position `i`
    /// still names the same shard and an engine is stale exactly when
    /// its shard's local generation moved; across epochs the shard list
    /// was rebuilt wholesale and nothing is reusable.
    search: Option<(u64, Vec<(u64, SearchEngine)>)>,
    events: LiveLog,
}

impl<'g> LiveShardedSession<'g> {
    /// A fresh live session over `live`.
    pub fn new(live: &'g LiveShardedGraph, config: SessionConfig) -> Self {
        Self {
            live,
            config,
            state: SessionState {
                timeline: Timeline::new(),
                path: ExplorationPath::new(),
                query: Default::default(),
            },
            log: ActionLog::new(),
            view: ViewState::empty(),
            search: None,
            events: LiveLog::new(),
        }
    }

    /// The live sharded graph under exploration.
    pub fn live(&self) -> &'g LiveShardedGraph {
        self.live
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// The durable session state (timeline, path, current query).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The user-action log (appends and compactions excluded; see
    /// [`LiveShardedSession::events`]).
    pub fn action_log(&self) -> &ActionLog {
        &self.log
    }

    /// Every event — actions, appends and compactions — in order.
    pub fn events(&self) -> &LiveLog {
        &self.events
    }

    /// Apply one user action against the current partition snapshot —
    /// the same move-state-through-a-transient-[`Session`] dance as the
    /// single-backend [`LiveSession::apply`], with a per-shard engine
    /// set instead of one index. Engines are reused per shard: only
    /// shards whose local generation moved since indexing (the
    /// delta-touched ones and the appended tail) are rebuilt, unless a
    /// compaction started a new epoch.
    pub fn apply(&mut self, action: UserAction) -> &ViewState {
        self.events.events.push(LiveEvent::Action(action.clone()));
        let reader = self.live.read();
        let graph = reader.graph();
        let epoch = graph.compaction_epoch();
        let mut cached = match self.search.take() {
            Some((built_epoch, engines)) if built_epoch == epoch => engines,
            _ => Vec::new(),
        }
        .into_iter();
        let mut shard_generations = Vec::with_capacity(graph.shard_count());
        let engines: Vec<SearchEngine> = graph
            .shards()
            .iter()
            .map(|s| {
                let generation = s.graph().generation();
                shard_generations.push(generation);
                match cached.next() {
                    Some((built_at, engine)) if built_at == generation => engine,
                    _ => SearchEngine::build(s.graph(), self.config.search),
                }
            })
            .collect();
        let session = Session::with_search(
            reader.handle(),
            self.config,
            SearchBackend::Sharded(engines),
        );
        let search = drive_transient(
            &mut self.state,
            &mut self.log,
            &mut self.view,
            session,
            action,
        );
        let SearchBackend::Sharded(engines) = search else {
            unreachable!("sharded live sessions run on the sharded backend")
        };
        self.search = Some((epoch, shard_generations.into_iter().zip(engines).collect()));
        &self.view
    }

    /// Append a delta to the live graph (recorded in the event log);
    /// visible at the next action, like every store mutation.
    pub fn append(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        self.events.events.push(LiveEvent::Append(delta.clone()));
        self.live.append(delta)
    }

    /// Re-partition the live graph to `target_shards` (recorded in the
    /// event log). The session's durable state is untouched; the next
    /// action re-indexes search against the fresh partition and answers
    /// exactly what the uncompacted graph would have answered.
    pub fn compact(&mut self, target_shards: usize) -> CompactionReceipt {
        self.events
            .events
            .push(LiveEvent::Compact { target_shards });
        self.live.compact_in_place(target_shards)
    }

    /// Convenience: submit a keyword query.
    pub fn submit_keywords(&mut self, q: &str) -> &ViewState {
        self.apply(UserAction::SubmitKeywords { query: q.into() })
    }

    /// Convenience: click an entity (investigation).
    pub fn click_entity(&mut self, entity: pivote_kg::EntityId) -> &ViewState {
        self.apply(UserAction::ClickEntity { entity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig, EntityId, KnowledgeGraph};

    fn base() -> KnowledgeGraph {
        generate(&DatagenConfig::tiny())
    }

    fn film_seed(kg: &KnowledgeGraph) -> EntityId {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[0]
    }

    fn delta_for(kg: &KnowledgeGraph, seed: EntityId) -> DeltaBatch {
        // append a brand-new film sharing the seed's entire cast, so an
        // investigation from the seed must surface it mid-session
        let starring = kg.predicate("starring").unwrap();
        let mut d = DeltaBatch::new();
        for &star in kg.objects(seed, starring) {
            d.triple(
                "Fresh_Live_Film",
                "starring",
                kg.entity_name(star).to_owned(),
            );
        }
        d.typed("Fresh_Live_Film", "Film")
            .typed("Fresh_Live_Film", "Work")
            .label("Fresh_Live_Film", "Fresh Live Film");
        for c in kg.categories_of(seed) {
            d.categorized("Fresh_Live_Film", kg.category_name(c).to_owned());
        }
        d
    }

    #[test]
    fn session_sees_appends_at_the_next_action() {
        let kg = base();
        let seed = film_seed(&kg);
        let delta = delta_for(&kg, seed);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());

        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        s.append(&delta);
        // the view does not change until the next action
        let unchanged: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, unchanged);

        // re-running the same investigation now reflects the new triples:
        // results must equal a fresh session over the rebuilt union
        s.apply(UserAction::RemoveSeed { entity: seed });
        s.click_entity(seed);
        let after: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();

        let mut union = base();
        union.apply(&delta);
        let mut fresh = Session::with_defaults(&union);
        fresh.click_entity(seed);
        let want: Vec<EntityId> = fresh.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(after, want, "post-append view must match the rebuilt union");
        let new_film = union.entity("Fresh_Live_Film").unwrap();
        assert!(
            after.contains(&new_film),
            "the appended film must surface in the recommendations"
        );
    }

    #[test]
    fn non_recomputing_actions_preserve_the_view() {
        // a duplicate click is a no-op and a lookup only sets the focus
        // — neither may wipe the recommendation area (regression: the
        // transient session must inherit the full rendered view, not
        // start from empty)
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert!(!before.is_empty());

        s.click_entity(seed); // duplicate: no-op in a plain Session
        let after_dup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_dup, "duplicate click must not wipe the view");

        s.apply(UserAction::LookupEntity { entity: seed });
        assert!(s.view().focus.is_some(), "lookup fills the focus");
        let after_lookup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_lookup, "lookup must keep the entities");
    }

    #[test]
    fn replay_live_reproduces_growth_and_rankings() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut original = LiveSession::new(&live, SessionConfig::default());
        original.click_entity(seed);
        original.append(&delta_for(&kg, seed));
        original.apply(UserAction::RemoveSeed { entity: seed });
        original.click_entity(seed);

        // serialize the full event log (appends included) and replay it
        // onto a fresh live graph built from the same base
        let log = LiveLog::from_json(&original.events().to_json()).unwrap();
        assert_eq!(&log, original.events());
        let live2 = LiveGraph::with_threads(base(), 1);
        let replayed = crate::replay::replay_live(&live2, SessionConfig::default(), &log);

        assert_eq!(live2.generation(), 1, "the append replayed");
        assert_eq!(replayed.state().timeline, original.state().timeline);
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "live replay must reproduce rankings bit-identically"
        );
    }

    #[test]
    fn sharded_session_survives_a_mid_session_compaction() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let delta = delta_for(&kg, seed);

        // live path: investigate, append (new trailing shard), compact,
        // re-investigate
        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut s = LiveShardedSession::new(&live, SessionConfig::default());
        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        s.append(&delta);
        assert_eq!(live.shard_count(), 4, "append minted a trailing shard");
        let receipt = s.compact(2);
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(live.shard_count(), 2);
        // like an append, a compaction does not change the view until
        // the next action — and the durable state is untouched
        let unchanged: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, unchanged);
        assert_eq!(s.state().timeline.len(), 1);
        s.apply(UserAction::RemoveSeed { entity: seed });
        s.click_entity(seed);
        let after: Vec<(EntityId, f64)> = s
            .view()
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect();

        // ground truth: a fresh sharded session over the rebuilt union
        // at the compacted shard count
        let mut union = base();
        union.apply(&delta);
        let usg = ShardedGraph::from_graph(&union, 2);
        let mut fresh = Session::sharded(&usg, SessionConfig::default());
        fresh.click_entity(seed);
        let want: Vec<(EntityId, f64)> = fresh
            .view()
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect();
        assert_eq!(
            after, want,
            "post-compaction view must match a fresh partition of the union"
        );
        let new_film = union.entity("Fresh_Live_Film").unwrap();
        assert!(after.iter().any(|&(e, _)| e == new_film));
        assert_eq!(s.events().len(), 5, "3 actions + append + compact");
    }

    #[test]
    fn replay_live_sharded_reproduces_growth_and_compaction() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut original = LiveShardedSession::new(&live, SessionConfig::default());
        original.click_entity(seed);
        original.append(&delta_for(&kg, seed));
        original.compact(2);
        original.apply(UserAction::RemoveSeed { entity: seed });
        original.click_entity(seed);

        // serialize the full event log (append + compact included) and
        // replay it onto a fresh live partition of the same base
        let log = LiveLog::from_json(&original.events().to_json()).unwrap();
        assert_eq!(&log, original.events());
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e, LiveEvent::Compact { target_shards: 2 })));
        let live2 = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let replayed = crate::replay::replay_live_sharded(&live2, SessionConfig::default(), &log);
        assert_eq!(live2.shard_count(), 2, "the compaction replayed");
        assert_eq!(live2.generation(), 2, "append + compaction");
        assert_eq!(replayed.state().timeline, original.state().timeline);
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "sharded live replay must reproduce rankings bit-identically"
        );

        // the same log replays onto a *single* live graph too: Compact
        // is a no-op there and rankings still land bit-identically
        let live3 = LiveGraph::with_threads(base(), 1);
        let on_single = crate::replay::replay_live(&live3, SessionConfig::default(), &log);
        assert_eq!(live3.generation(), 1, "only the append applies");
        assert_eq!(
            on_single
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "a compaction-bearing log must replay identically on the single backend"
        );
    }

    #[test]
    fn sharded_search_reindexes_touched_and_appended_shards_lazily() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveShardedGraph::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut s = LiveShardedSession::new(&live, SessionConfig::default());
        s.submit_keywords(&kg.display_name(seed));
        let (epoch, engines) = s.search.as_ref().unwrap();
        assert_eq!((*epoch, engines.len()), (0, 3), "one engine per shard");

        let mut d = DeltaBatch::new();
        d.triple(
            "Fresh_Search_Film",
            "starring",
            kg.entity_name(seed).to_owned(),
        )
        .typed("Fresh_Search_Film", "Film")
        .label("Fresh_Search_Film", "Zanzibar Premiere");
        s.append(&d);

        // the next action re-indexes only the delta-touched shards and
        // the appended tail — and the new film is immediately findable
        let view = s.submit_keywords("Zanzibar Premiere");
        let fresh = {
            let reader = live.read();
            reader.graph().entity("Fresh_Search_Film").unwrap()
        };
        assert!(
            view.entities.iter().any(|re| re.entity == fresh),
            "appended film must be searchable at the next action"
        );
        let (epoch, engines) = s.search.as_ref().unwrap();
        assert_eq!(*epoch, 0, "appends do not change the epoch");
        assert_eq!(engines.len(), 4, "trailing shard gained an engine");
        {
            let reader = live.read();
            for (i, shard) in reader.graph().shards().iter().enumerate() {
                assert_eq!(
                    engines[i].0,
                    shard.graph().generation(),
                    "engine {i} must be tagged with its shard's local generation"
                );
            }
            // the untouched shards were NOT re-indexed: their local
            // generation never moved, so their tags still read 0
            assert!(
                engines.iter().any(|&(g, _)| g == 0),
                "some shard must have been untouched by the delta"
            );
        }

        // compaction starts a new epoch: wholesale re-index, same answers
        s.compact(2);
        let view = s.submit_keywords("Zanzibar Premiere");
        assert!(view.entities.iter().any(|re| re.entity == fresh));
        let (epoch, engines) = s.search.as_ref().unwrap();
        assert_eq!(*epoch, 1, "compaction bumps the epoch");
        assert_eq!(engines.len(), 2, "one engine per compacted shard");
    }

    #[test]
    fn timeline_and_path_survive_appends() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.submit_keywords(&kg.display_name(seed));
        s.append(&delta_for(&kg, seed));
        s.click_entity(seed);
        assert_eq!(s.state().timeline.len(), 2, "search + investigate");
        assert_eq!(s.action_log().len(), 2);
        assert_eq!(s.events().len(), 3, "two actions + one append");
        // the search index was rebuilt exactly once for the new generation
        assert_eq!(s.search.as_ref().unwrap().0, 1);
    }
}

//! Live exploration sessions: explore a store that grows mid-session.
//!
//! A [`LiveSession`] drives the full [`Session`] interaction loop over a
//! [`LiveStore`] — single **or** sharded layout, one implementation:
//! every user action runs against a consistent read-locked snapshot, and
//! [`LiveSession::append`] grows the store *between* actions — the
//! paper's fixed-snapshot exploration model extended to a store serving
//! live traffic. The session's durable state (timeline, exploratory
//! path, current query, action log) survives appends **and compactions**
//! untouched, because compaction changes no global id and no answer; the
//! per-snapshot machinery (query context, extent handles) is rebuilt per
//! action from the live store's
//! [`SharedCache`](pivote_core::SharedCache), so untouched `p(π|c)`
//! densities stay warm across generations.
//!
//! The keyword-search index is cached per layout: one engine tagged with
//! the graph generation on the single layout; one engine **per shard**
//! on the sharded layout, each tagged with its shard's local generation
//! and all tagged with the store's compaction epoch — after an append
//! only the delta-touched shards (plus the appended tail) re-index, and
//! a compaction starts a new epoch that re-indexes the fresh partition
//! wholesale.
//!
//! Everything a live session does — actions, appends *and* compactions —
//! is recorded in a [`LiveLog`], so
//! [`replay_live`](crate::replay::replay_live) can reproduce an entire
//! live exploration (growth and re-partitioning included) from the same
//! base store, on either layout.

use crate::events::UserAction;
use crate::path::ExplorationPath;
use crate::replay::ActionLog;
use crate::session::{
    merge_corpus_stats, search_backend_hits, SearchBackend, Session, SessionConfig, SessionState,
    ViewState,
};
use crate::timeline::Timeline;
use pivote_core::{LiveStore, PreparedSnapshot, StoreError};
use pivote_kg::{AppliedDelta, CompactionReceipt, DeltaBatch, EntityId, GraphBackend};
use pivote_search::{CorpusStats, Hit, SearchConfig, SearchEngine};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One event of a live session: a user action, a store append, or a
/// compaction of the backing partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LiveEvent {
    /// A user action applied to the session.
    Action(UserAction),
    /// A delta batch appended to the live store.
    Append(DeltaBatch),
    /// A re-partition of the backing store to `target_shards` fresh
    /// range shards. Compaction is answer-preserving, so replaying it
    /// reproduces the exact rankings; on a single-layout replay target
    /// it is a no-op (a single graph is always one partition).
    Compact {
        /// The shard count the store was re-partitioned to.
        target_shards: usize,
    },
}

/// The ordered record of everything a live session did — the replayable
/// artifact of an exploration over a growing store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveLog {
    /// Events in application order.
    pub events: Vec<LiveEvent>,
}

impl LiveLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("live log serializes")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Run one action on a transient [`Session`] over a read-guard handle,
/// moving the durable state (timeline/path/query/log) and the rendered
/// view in and back out without copies. Returns the dissolved
/// [`SearchBackend`] so the caller can stash its engine(s) for the next
/// action.
fn drive_transient(
    state: &mut SessionState,
    log: &mut ActionLog,
    view: &mut ViewState,
    mut session: Session<'_>,
    action: UserAction,
) -> SearchBackend {
    let state_in = std::mem::replace(
        state,
        SessionState {
            timeline: Timeline::new(),
            path: ExplorationPath::new(),
            query: Default::default(),
        },
    );
    session.import_state(
        state_in,
        std::mem::take(log),
        std::mem::replace(view, ViewState::empty()),
    );
    session.apply(action);
    let (state_out, log_out, view_out, search) = session.dissolve();
    *state = state_out;
    *log = log_out;
    *view = view_out;
    search
}

/// The cached keyword-search component, per layout, tagged with the
/// store version it was indexed at. Cloning is cheap — the engines and
/// corpus statistics are `Arc`-shared.
#[derive(Clone)]
enum SearchCache {
    /// One engine over the single graph, tagged with the generation it
    /// was built at; re-indexed lazily after an append.
    Single {
        /// Graph generation at indexing time.
        generation: u64,
        /// The prebuilt engine (`Arc`-shared with every search still
        /// running on it, like [`SearchBackend::Single`]).
        engine: Arc<SearchEngine>,
    },
    /// One engine per shard, each tagged with the local graph generation
    /// it was built at, all tagged with the compaction epoch. Within one
    /// epoch shards are only ever appended, so position `i` still names
    /// the same shard and an engine is stale exactly when its shard's
    /// local generation moved; across epochs the shard list was rebuilt
    /// wholesale and nothing is reusable.
    Sharded {
        /// Compaction epoch at indexing time.
        epoch: u64,
        /// `(local generation, engine)` per shard, in shard order.
        engines: Vec<(u64, Arc<SearchEngine>)>,
        /// The globally-merged corpus statistics the engines score
        /// against; recomputed whenever any engine is rebuilt.
        corpus: Arc<CorpusStats>,
    },
}

/// Build — or reuse from `cache`, when the version tags still match the
/// snapshot — the search backend for `backend`, returning it together
/// with the tags to cache it under. Shared by [`LiveSession::apply`] and
/// [`LiveSearchCache::search`].
fn refresh_search(
    cache: Option<SearchCache>,
    backend: &GraphBackend,
    config: SearchConfig,
) -> (SearchBackend, SearchTags) {
    match backend {
        GraphBackend::Single(kg) => {
            let generation = kg.generation();
            let engine = match cache {
                Some(SearchCache::Single {
                    generation: built_at,
                    engine,
                }) if built_at == generation => engine,
                _ => Arc::new(SearchEngine::build(kg, config)),
            };
            (
                SearchBackend::Single(engine),
                SearchTags::Single { generation },
            )
        }
        GraphBackend::Sharded(sg) => {
            let epoch = sg.compaction_epoch();
            let (cached, cached_corpus) = match cache {
                Some(SearchCache::Sharded {
                    epoch: built_epoch,
                    engines,
                    corpus,
                }) if built_epoch == epoch => (engines, Some(corpus)),
                _ => (Vec::new(), None),
            };
            let n_cached = cached.len();
            let mut reused = 0usize;
            let mut cached = cached.into_iter();
            let mut shard_generations = Vec::with_capacity(sg.shard_count());
            let engines: Vec<Arc<SearchEngine>> = sg
                .shards()
                .iter()
                .map(|s| {
                    let generation = s.graph().generation();
                    shard_generations.push(generation);
                    match cached.next() {
                        Some((built_at, engine)) if built_at == generation => {
                            reused += 1;
                            engine
                        }
                        _ => Arc::new(SearchEngine::build_keyed(s.graph(), config, |local| {
                            s.to_global(local).raw()
                        })),
                    }
                })
                .collect();
            // the corpus merges owned documents of EVERY shard, so a
            // rebuild of any one engine stales it — but when the only
            // change is appended trailing shards (the common shape of a
            // live write), absorbing just the new engines into the
            // cached merge is O(delta) instead of O(partition)
            let prefix_reused = reused == n_cached;
            let corpus = match cached_corpus {
                Some(c) if prefix_reused && n_cached == sg.shard_count() => c,
                Some(c) if prefix_reused && n_cached < sg.shard_count() => {
                    let mut merged = (*c).clone();
                    for (engine, shard) in engines.iter().zip(sg.shards()).skip(n_cached) {
                        merged.absorb(engine.index(), |d| shard.is_owned(EntityId::new(d)));
                    }
                    Arc::new(merged)
                }
                _ => Arc::new(merge_corpus_stats(&engines, sg)),
            };
            (
                SearchBackend::Sharded { engines, corpus },
                SearchTags::Sharded {
                    epoch,
                    shard_generations,
                },
            )
        }
    }
}

impl SearchCache {
    /// Whether `self` indexes a store state at least as new as `other`.
    /// Guards the stash against going *backwards*: a request pinned to
    /// a slightly-stale snapshot must not clobber the engine set the
    /// warmer just built for the latest generation, or the two would
    /// ping-pong the stash and rebuild the same engines on every
    /// request that races a write (the `BENCH_10` search-tail
    /// pathology). Within a compaction epoch shards only append and
    /// local generations only grow, so "newer" is well-ordered.
    fn at_least_as_fresh(&self, other: Option<&SearchCache>) -> bool {
        let Some(other) = other else { return true };
        match (self, other) {
            (
                SearchCache::Single { generation: a, .. },
                SearchCache::Single { generation: b, .. },
            ) => a >= b,
            (
                SearchCache::Sharded {
                    epoch: ea,
                    engines: xa,
                    ..
                },
                SearchCache::Sharded {
                    epoch: eb,
                    engines: xb,
                    ..
                },
            ) => {
                if ea != eb {
                    return ea > eb;
                }
                if xa.len() != xb.len() {
                    return xa.len() > xb.len();
                }
                xa.iter().zip(xb).all(|((ga, _), (gb, _))| ga >= gb)
            }
            // the layout changed under the cache: the store was rebuilt
            // wholesale, nothing in the stash is reusable either way
            _ => true,
        }
    }
}

/// Re-tag a dissolved [`SearchBackend`] for the cache.
fn stash_search(search: SearchBackend, tags: SearchTags) -> SearchCache {
    match (search, tags) {
        (SearchBackend::Single(engine), SearchTags::Single { generation }) => {
            SearchCache::Single { generation, engine }
        }
        (
            SearchBackend::Sharded { engines, corpus },
            SearchTags::Sharded {
                epoch,
                shard_generations,
            },
        ) => SearchCache::Sharded {
            epoch,
            engines: shard_generations.into_iter().zip(engines).collect(),
            corpus,
        },
        _ => unreachable!("the search backend variant follows the store layout"),
    }
}

/// A self-contained, thread-safe keyword-search component over a
/// [`LiveStore`] — the serving layer's search path. It keeps the same
/// lazily re-indexed engine cache a [`LiveSession`] maintains (per
/// generation on the single layout; per shard-generation within a
/// compaction epoch on the sharded layout, scored against globally
/// merged corpus statistics) but carries **no** session state, so many
/// connections can share one instance behind an `Arc`.
///
/// The mutex guards only the refresh bookkeeping: each search takes a
/// cheap `Arc` clone of the backend and runs **unlocked**, so N
/// concurrent searches share one index and run concurrently instead of
/// serializing on the cache.
pub struct LiveSearchCache {
    config: SearchConfig,
    cache: Mutex<Option<SearchCache>>,
}

impl LiveSearchCache {
    /// An empty cache; the first search indexes the store.
    pub fn new(config: SearchConfig) -> Self {
        Self {
            config,
            cache: Mutex::new(None),
        }
    }

    /// Refresh the cached engines against `backend` and hand back a
    /// shared clone to search with. The lock is held for the refresh
    /// only — on the hot path (tags match) that is a couple of integer
    /// compares and `Arc` bumps.
    /// The cache mutex, recovering from poisoning: a poisoned cache only
    /// means a panic dropped a partially-stale engine set; the version
    /// tags guard staleness, so the inner value is safe to keep using.
    fn stash(&self) -> std::sync::MutexGuard<'_, Option<SearchCache>> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn refreshed(&self, backend: &GraphBackend) -> SearchBackend {
        // snapshot the stash (cheap `Arc` clones), then build OUTSIDE
        // the lock: a slow re-index must not head-of-line-block every
        // other thread's refresh behind the mutex
        let prior = self.stash().clone();
        let (search, tags) = refresh_search(prior, backend, self.config);
        let candidate = stash_search(search.clone(), tags);
        // the stash only ever moves *forward*: a refresh against a
        // stale backend still reuses every tag-matching engine, but its
        // (older) result does not replace a newer stash
        let mut guard = self.stash();
        if candidate.at_least_as_fresh(guard.as_ref()) {
            *guard = Some(candidate);
        }
        search
    }

    /// Top-`k` keyword hits against the store's current snapshot.
    /// Re-indexes lazily when the store moved since the last call;
    /// sharded stores answer bit-identically to a single-graph engine
    /// over the same data.
    pub fn search(&self, live: &LiveStore, query: &str, k: usize) -> Vec<Hit> {
        let reader = live.read();
        let backend = reader.backend();
        let search = self.refreshed(backend);
        search_backend_hits(&search, backend.as_sharded(), query, k)
    }

    /// Top-`k` keyword hits against a prepared snapshot — the serving
    /// read path. Uses the engines attached to the snapshot when a
    /// warmer (or an earlier search) already built them; otherwise
    /// refreshes from the cache against the snapshot's pinned backend
    /// and attaches the result, so the build cost is paid **once per
    /// generation** no matter how many requests land on it.
    pub fn search_prepared(&self, snap: &PreparedSnapshot, query: &str, k: usize) -> Vec<Hit> {
        let search = self.prepare(snap);
        search_backend_hits(&search, snap.backend().as_sharded(), query, k)
    }

    /// Ensure `snap` carries a ready search backend and return it — the
    /// hook the background [`SearchWarmer`] drives so the first search
    /// after a write does not pay the re-index inline. Builders
    /// coordinate on the snapshot's write-once slot: when a request
    /// races the warmer to a fresh generation, one of them builds and
    /// the other parks until the engines are ready, instead of both
    /// grinding out the same index concurrently.
    pub fn prepare(&self, snap: &PreparedSnapshot) -> SearchBackend {
        let attached = snap.search_or_init(|| Arc::new(self.refreshed(snap.backend())));
        match attached.downcast::<SearchBackend>() {
            Ok(search) => (*search).clone(),
            // a foreign layer attached its own payload: serve from the
            // shared cache directly
            Err(_) => self.refreshed(snap.backend()),
        }
    }
}

/// A background thread that pre-builds search engines into freshly
/// published [`PreparedSnapshot`]s, so the re-index after a write runs
/// **off the request path**: the first search against a new generation
/// finds its engines already attached instead of rebuilding inline —
/// the fix for the search-p99 head-of-line stall `BENCH_7` measured.
///
/// Stop it explicitly with [`SearchWarmer::stop`] (also invoked on
/// drop), which wakes the thread and joins it.
pub struct SearchWarmer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    warmed: Arc<std::sync::atomic::AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SearchWarmer {
    /// Spawn the warmer: every `tick`, if the store's published snapshot
    /// has no search attached yet, build (or reuse from `search`'s
    /// cache) the engines and attach them.
    pub fn spawn(
        store: Arc<LiveStore>,
        search: Arc<LiveSearchCache>,
        tick: std::time::Duration,
    ) -> Self {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let warmed = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let warmed = Arc::clone(&warmed);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if let Some(snap) = store.snapshot() {
                        if snap.attached_search().is_none() {
                            search.prepare(&snap);
                            warmed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    std::thread::park_timeout(tick);
                }
            })
        };
        Self {
            stop,
            warmed,
            thread: Some(thread),
        }
    }

    /// How many snapshots this warmer has attached engines to.
    pub fn warmed(&self) -> u64 {
        self.warmed.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// A handle that wakes the warmer *now* instead of at its next tick
    /// — hand it to the write path so a freshly published generation
    /// starts warming the moment it exists, not up to one tick later.
    /// Unparking an already-stopped warmer is harmless.
    pub fn waker(&self) -> std::thread::Thread {
        self.thread
            .as_ref()
            .expect("warmer thread runs until stop")
            .thread()
            .clone()
    }

    /// Signal the thread to stop and join it (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for SearchWarmer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// An exploration session over a [`LiveStore`] that may grow *and be
/// re-partitioned* mid-session — one implementation for both layouts.
pub struct LiveSession<'g> {
    live: &'g LiveStore,
    config: SessionConfig,
    state: SessionState,
    log: ActionLog,
    view: ViewState,
    search: Option<SearchCache>,
    events: LiveLog,
}

impl<'g> LiveSession<'g> {
    /// A fresh live session over `live`.
    pub fn new(live: &'g LiveStore, config: SessionConfig) -> Self {
        Self {
            live,
            config,
            state: SessionState {
                timeline: Timeline::new(),
                path: ExplorationPath::new(),
                query: Default::default(),
            },
            log: ActionLog::new(),
            view: ViewState::empty(),
            search: None,
            events: LiveLog::new(),
        }
    }

    /// The live store under exploration.
    pub fn live(&self) -> &'g LiveStore {
        self.live
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// The durable session state (timeline, path, current query).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The user-action log (appends and compactions excluded; see
    /// [`LiveSession::events`]).
    pub fn action_log(&self) -> &ActionLog {
        &self.log
    }

    /// Every event — actions, appends and compactions — in order.
    pub fn events(&self) -> &LiveLog {
        &self.events
    }

    /// Apply one user action against the current store snapshot and
    /// return the updated view. The heavy lifting runs on a transient
    /// [`Session`] scoped to a read guard; timeline/path/query/log and
    /// the rendered view **move** in and back out (no per-action copies
    /// of the session history), and the live store's shared cache keeps
    /// densities warm. The search component is reused from the cache
    /// when its version tags still match the snapshot.
    pub fn apply(&mut self, action: UserAction) -> &ViewState {
        self.events.events.push(LiveEvent::Action(action.clone()));
        let reader = self.live.read();
        let (search, next_tags) =
            refresh_search(self.search.take(), reader.backend(), self.config.search);
        let session = Session::with_search(reader.handle(), self.config, search);
        let search = drive_transient(
            &mut self.state,
            &mut self.log,
            &mut self.view,
            session,
            action,
        );
        self.search = Some(stash_search(search, next_tags));
        &self.view
    }

    /// Append a delta to the live store (recorded in the event log). The
    /// view is *not* recomputed — like every store mutation it becomes
    /// visible at the next action, keeping actions the only points where
    /// the interface changes under the user. A refused write (poisoned
    /// store) is **not** recorded, so the replay log only ever carries
    /// mutations that actually happened.
    pub fn append(&mut self, delta: &DeltaBatch) -> Result<AppliedDelta, StoreError> {
        let applied = self.live.append(delta)?;
        self.events.events.push(LiveEvent::Append(delta.clone()));
        Ok(applied)
    }

    /// Re-partition the live store to `target_shards` (recorded in the
    /// event log), through the concurrent compaction path — the rebuild
    /// runs off the write lock, so other sessions' queries never block
    /// behind it. The session's durable state is untouched; the next
    /// action re-indexes search against the fresh partition and answers
    /// exactly what the uncompacted store would have answered. On a
    /// single-layout store this is the identity (still recorded, so the
    /// log replays onto sharded deployments).
    pub fn compact(&mut self, target_shards: usize) -> Result<CompactionReceipt, StoreError> {
        let receipt = self.live.compact_concurrent(target_shards)?;
        self.events
            .events
            .push(LiveEvent::Compact { target_shards });
        Ok(receipt)
    }

    /// Convenience: submit a keyword query.
    pub fn submit_keywords(&mut self, q: &str) -> &ViewState {
        self.apply(UserAction::SubmitKeywords { query: q.into() })
    }

    /// Convenience: click an entity (investigation).
    pub fn click_entity(&mut self, entity: pivote_kg::EntityId) -> &ViewState {
        self.apply(UserAction::ClickEntity { entity })
    }

    /// Test/diagnostic view of the search cache's version tags: the
    /// single-layout generation, or the sharded-layout epoch and
    /// per-shard local generations.
    #[cfg(test)]
    fn search_tags(&self) -> Option<SearchTags> {
        self.search.as_ref().map(|s| match s {
            SearchCache::Single { generation, .. } => SearchTags::Single {
                generation: *generation,
            },
            SearchCache::Sharded { epoch, engines, .. } => SearchTags::Sharded {
                epoch: *epoch,
                shard_generations: engines.iter().map(|&(g, _)| g).collect(),
            },
        })
    }
}

/// The version tags a rebuilt search component will be cached under.
#[derive(Debug, PartialEq, Eq)]
enum SearchTags {
    /// Single layout: the graph generation.
    Single {
        /// Graph generation at indexing time.
        generation: u64,
    },
    /// Sharded layout: compaction epoch + per-shard local generations.
    Sharded {
        /// Compaction epoch at indexing time.
        epoch: u64,
        /// Local generation per shard, in shard order.
        shard_generations: Vec<u64>,
    },
}

/// Deprecated name of [`LiveSession`] from before the single/sharded
/// live stacks were unified — the one session type now serves both
/// layouts of a [`LiveStore`].
#[deprecated(since = "0.5.0", note = "use LiveSession — one session, both layouts")]
pub type LiveShardedSession<'g> = LiveSession<'g>;

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig, EntityId, KnowledgeGraph};

    fn base() -> KnowledgeGraph {
        generate(&DatagenConfig::tiny())
    }

    fn film_seed(kg: &KnowledgeGraph) -> EntityId {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[0]
    }

    fn delta_for(kg: &KnowledgeGraph, seed: EntityId) -> DeltaBatch {
        // append a brand-new film sharing the seed's entire cast, so an
        // investigation from the seed must surface it mid-session
        let starring = kg.predicate("starring").unwrap();
        let mut d = DeltaBatch::new();
        for &star in kg.objects(seed, starring) {
            d.triple(
                "Fresh_Live_Film",
                "starring",
                kg.entity_name(star).to_owned(),
            );
        }
        d.typed("Fresh_Live_Film", "Film")
            .typed("Fresh_Live_Film", "Work")
            .label("Fresh_Live_Film", "Fresh Live Film");
        for c in kg.categories_of(seed) {
            d.categorized("Fresh_Live_Film", kg.category_name(c).to_owned());
        }
        d
    }

    #[test]
    fn session_sees_appends_at_the_next_action() {
        let kg = base();
        let seed = film_seed(&kg);
        let delta = delta_for(&kg, seed);
        let live = LiveStore::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());

        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        s.append(&delta).expect("store healthy");
        // the view does not change until the next action
        let unchanged: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, unchanged);

        // re-running the same investigation now reflects the new triples:
        // results must equal a fresh session over the rebuilt union
        s.apply(UserAction::RemoveSeed { entity: seed });
        s.click_entity(seed);
        let after: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();

        let mut union = base();
        union.apply(&delta);
        let mut fresh = Session::with_defaults(&union);
        fresh.click_entity(seed);
        let want: Vec<EntityId> = fresh.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(after, want, "post-append view must match the rebuilt union");
        let new_film = union.entity("Fresh_Live_Film").unwrap();
        assert!(
            after.contains(&new_film),
            "the appended film must surface in the recommendations"
        );
    }

    #[test]
    fn non_recomputing_actions_preserve_the_view() {
        // a duplicate click is a no-op and a lookup only sets the focus
        // — neither may wipe the recommendation area (regression: the
        // transient session must inherit the full rendered view, not
        // start from empty)
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveStore::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert!(!before.is_empty());

        s.click_entity(seed); // duplicate: no-op in a plain Session
        let after_dup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_dup, "duplicate click must not wipe the view");

        s.apply(UserAction::LookupEntity { entity: seed });
        assert!(s.view().focus.is_some(), "lookup fills the focus");
        let after_lookup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_lookup, "lookup must keep the entities");
    }

    #[test]
    fn replay_live_reproduces_growth_and_rankings() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveStore::with_threads(base(), 1);
        let mut original = LiveSession::new(&live, SessionConfig::default());
        original.click_entity(seed);
        original
            .append(&delta_for(&kg, seed))
            .expect("store healthy");
        original.apply(UserAction::RemoveSeed { entity: seed });
        original.click_entity(seed);

        // serialize the full event log (appends included) and replay it
        // onto a fresh live store built from the same base
        let log = LiveLog::from_json(&original.events().to_json()).unwrap();
        assert_eq!(&log, original.events());
        let live2 = LiveStore::with_threads(base(), 1);
        let replayed = crate::replay::replay_live(&live2, SessionConfig::default(), &log);

        assert_eq!(live2.generation(), 1, "the append replayed");
        assert_eq!(replayed.state().timeline, original.state().timeline);
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "live replay must reproduce rankings bit-identically"
        );
    }

    #[test]
    fn sharded_session_survives_a_mid_session_compaction() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let delta = delta_for(&kg, seed);

        // live path: investigate, append (new trailing shard), compact,
        // re-investigate — all through the ONE unified session type
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        s.append(&delta).expect("store healthy");
        assert_eq!(live.shard_count(), 4, "append minted a trailing shard");
        let receipt = s.compact(2).expect("store healthy");
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(live.shard_count(), 2);
        // like an append, a compaction does not change the view until
        // the next action — and the durable state is untouched
        let unchanged: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, unchanged);
        assert_eq!(s.state().timeline.len(), 1);
        s.apply(UserAction::RemoveSeed { entity: seed });
        s.click_entity(seed);
        let after: Vec<(EntityId, f64)> = s
            .view()
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect();

        // ground truth: a fresh sharded session over the rebuilt union
        // at the compacted shard count
        let mut union = base();
        union.apply(&delta);
        let usg = ShardedGraph::from_graph(&union, 2);
        let mut fresh = Session::sharded(&usg, SessionConfig::default());
        fresh.click_entity(seed);
        let want: Vec<(EntityId, f64)> = fresh
            .view()
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect();
        assert_eq!(
            after, want,
            "post-compaction view must match a fresh partition of the union"
        );
        let new_film = union.entity("Fresh_Live_Film").unwrap();
        assert!(after.iter().any(|&(e, _)| e == new_film));
        assert_eq!(s.events().len(), 5, "3 actions + append + compact");
    }

    #[test]
    fn replay_live_reproduces_growth_and_compaction_on_both_layouts() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut original = LiveSession::new(&live, SessionConfig::default());
        original.click_entity(seed);
        original
            .append(&delta_for(&kg, seed))
            .expect("store healthy");
        original.compact(2).expect("store healthy");
        original.apply(UserAction::RemoveSeed { entity: seed });
        original.click_entity(seed);

        // serialize the full event log (append + compact included) and
        // replay it onto a fresh live partition of the same base
        let log = LiveLog::from_json(&original.events().to_json()).unwrap();
        assert_eq!(&log, original.events());
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e, LiveEvent::Compact { target_shards: 2 })));
        let live2 = LiveStore::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let replayed = crate::replay::replay_live(&live2, SessionConfig::default(), &log);
        assert_eq!(live2.shard_count(), 2, "the compaction replayed");
        assert_eq!(live2.generation(), 2, "append + compaction");
        assert_eq!(replayed.state().timeline, original.state().timeline);
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "sharded live replay must reproduce rankings bit-identically"
        );

        // the same log replays onto a *single-layout* store too: Compact
        // is the identity there and rankings still land bit-identically
        let live3 = LiveStore::with_threads(base(), 1);
        let on_single = crate::replay::replay_live(&live3, SessionConfig::default(), &log);
        assert_eq!(live3.generation(), 1, "only the append applies");
        assert_eq!(
            on_single
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "a compaction-bearing log must replay identically on the single layout"
        );
    }

    #[test]
    fn sharded_search_reindexes_touched_and_appended_shards_lazily() {
        use pivote_kg::ShardedGraph;
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveStore::with_threads(ShardedGraph::from_graph(&base(), 3), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.submit_keywords(&kg.display_name(seed));
        let Some(SearchTags::Sharded {
            epoch,
            shard_generations,
        }) = s.search_tags()
        else {
            panic!("sharded store must cache a per-shard engine set");
        };
        assert_eq!(
            (epoch, shard_generations.len()),
            (0, 3),
            "one engine per shard"
        );

        let mut d = DeltaBatch::new();
        d.triple(
            "Fresh_Search_Film",
            "starring",
            kg.entity_name(seed).to_owned(),
        )
        .typed("Fresh_Search_Film", "Film")
        .label("Fresh_Search_Film", "Zanzibar Premiere");
        s.append(&d).expect("store healthy");

        // the next action re-indexes only the delta-touched shards and
        // the appended tail — and the new film is immediately findable
        let view = s.submit_keywords("Zanzibar Premiere");
        let fresh = {
            let reader = live.read();
            reader.graph().entity("Fresh_Search_Film").unwrap()
        };
        assert!(
            view.entities.iter().any(|re| re.entity == fresh),
            "appended film must be searchable at the next action"
        );
        let Some(SearchTags::Sharded {
            epoch,
            shard_generations,
        }) = s.search_tags()
        else {
            panic!("still sharded");
        };
        assert_eq!(epoch, 0, "appends do not change the epoch");
        assert_eq!(
            shard_generations.len(),
            4,
            "trailing shard gained an engine"
        );
        {
            let reader = live.read();
            for (i, shard) in reader.graph().shards().iter().enumerate() {
                assert_eq!(
                    shard_generations[i],
                    shard.graph().generation(),
                    "engine {i} must be tagged with its shard's local generation"
                );
            }
            // the untouched shards were NOT re-indexed: their local
            // generation never moved, so their tags still read 0
            assert!(
                shard_generations.contains(&0),
                "some shard must have been untouched by the delta"
            );
        }

        // compaction starts a new epoch: wholesale re-index, same answers
        s.compact(2).expect("store healthy");
        let view = s.submit_keywords("Zanzibar Premiere");
        assert!(view.entities.iter().any(|re| re.entity == fresh));
        let Some(SearchTags::Sharded {
            epoch,
            shard_generations,
        }) = s.search_tags()
        else {
            panic!("still sharded");
        };
        assert_eq!(epoch, 1, "compaction bumps the epoch");
        assert_eq!(shard_generations.len(), 2, "one engine per compacted shard");
    }

    #[test]
    fn timeline_and_path_survive_appends() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveStore::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.submit_keywords(&kg.display_name(seed));
        s.append(&delta_for(&kg, seed)).expect("store healthy");
        s.click_entity(seed);
        assert_eq!(s.state().timeline.len(), 2, "search + investigate");
        assert_eq!(s.action_log().len(), 2);
        assert_eq!(s.events().len(), 3, "two actions + one append");
        // the search index was rebuilt exactly once for the new generation
        assert_eq!(s.search_tags(), Some(SearchTags::Single { generation: 1 }));
    }

    /// The prepared-snapshot search path answers bit-identically to the
    /// lock path, and the built engines attach to the snapshot exactly
    /// once — the second search reuses the attached backend (same
    /// engine allocation) instead of consulting the cache again.
    #[test]
    fn search_prepared_matches_lock_path_and_attaches_once() {
        for shards in [1usize, 3] {
            let kg = base();
            let live = if shards == 1 {
                LiveStore::with_threads(kg.clone(), 1)
            } else {
                LiveStore::with_threads(pivote_kg::ShardedGraph::from_graph(&kg, shards), 1)
            };
            live.enable_snapshots();
            let cache = LiveSearchCache::new(SearchConfig::default());

            let want = cache.search(&live, "film", 10);
            let snap = live.snapshot().expect("snapshots enabled");
            assert!(snap.attached_search().is_none());
            let got = cache.search_prepared(&snap, "film", 10);
            assert_eq!(got, want, "shards={shards}");
            assert!(snap.attached_search().is_some(), "first search attaches");

            // second search on the same snapshot reuses the attachment:
            // the backends share the same engine allocation
            let a = cache.prepare(&snap);
            let b = cache.prepare(&snap);
            match (&a, &b) {
                (SearchBackend::Single(x), SearchBackend::Single(y)) => {
                    assert!(Arc::ptr_eq(x, y));
                }
                (
                    SearchBackend::Sharded { engines: x, .. },
                    SearchBackend::Sharded { engines: y, .. },
                ) => {
                    for (ex, ey) in x.iter().zip(y) {
                        assert!(Arc::ptr_eq(ex, ey));
                    }
                }
                _ => panic!("layout changed between prepares"),
            }

            // after an append the fresh snapshot starts unattached and
            // the stale one keeps answering for its own pinned graph
            let mut d = DeltaBatch::new();
            d.typed("Snapshot_Search_Film", "Film")
                .label("Snapshot_Search_Film", "Snapshot Search Film");
            live.append(&d).expect("store healthy");
            let fresh = live.snapshot().expect("republished");
            assert!(fresh.attached_search().is_none());
            assert_eq!(cache.search_prepared(&snap, "film", 10), want);
            let new_hits = cache.search_prepared(&fresh, "Snapshot Search Film", 5);
            assert!(
                !new_hits.is_empty(),
                "fresh snapshot must see the appended film (shards={shards})"
            );
        }
    }

    /// The background warmer attaches engines to freshly published
    /// snapshots off the request path: after a write, the request thread
    /// finds the index prebuilt.
    #[test]
    fn search_warmer_prebuilds_engines_off_the_request_path() {
        let live = Arc::new(LiveStore::with_threads(base(), 1));
        live.enable_snapshots();
        let cache = Arc::new(LiveSearchCache::new(SearchConfig::default()));
        let mut warmer = SearchWarmer::spawn(
            Arc::clone(&live),
            Arc::clone(&cache),
            std::time::Duration::from_millis(1),
        );

        let mut d = DeltaBatch::new();
        d.typed("Warmed_Film", "Film")
            .label("Warmed_Film", "Warmed Film");
        live.append(&d).expect("store healthy");

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let snap = live.snapshot().expect("snapshots enabled");
            if snap.generation() == 1 && snap.attached_search().is_some() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "warmer never attached engines"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(warmer.warmed() >= 1);
        warmer.stop();
        let snap = live.snapshot().unwrap();
        let hits = cache.search_prepared(&snap, "Warmed Film", 5);
        assert!(!hits.is_empty());
    }
}

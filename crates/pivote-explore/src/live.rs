//! Live exploration sessions: explore a graph that grows mid-session.
//!
//! A [`LiveSession`] drives the full [`Session`] interaction loop over a
//! [`LiveGraph`]: every user action runs against a consistent read-locked
//! snapshot, and [`LiveSession::append`] grows the graph *between*
//! actions — the paper's fixed-snapshot exploration model extended to a
//! store serving live traffic. The session's durable state (timeline,
//! exploratory path, current query, action log) survives appends; the
//! per-snapshot machinery (query context, extent handles) is rebuilt per
//! action from the live graph's [`SharedCache`](pivote_core::SharedCache),
//! so untouched `p(π|c)` densities stay warm across generations. The
//! keyword-search index is cached per generation and re-indexed only when
//! an append actually happened.
//!
//! Everything a live session does — actions *and* appends — is recorded
//! in a [`LiveLog`], so [`replay_live`](crate::replay::replay_live) can
//! reproduce an entire live exploration (growth included) from the same
//! base graph.

use crate::events::UserAction;
use crate::path::ExplorationPath;
use crate::replay::ActionLog;
use crate::session::{Session, SessionConfig, SessionState, ViewState};
use crate::timeline::Timeline;
use pivote_core::LiveGraph;
use pivote_kg::{AppliedDelta, DeltaBatch};
use pivote_search::SearchEngine;
use serde::{Deserialize, Serialize};

/// One event of a live session: a user action or a graph append.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LiveEvent {
    /// A user action applied to the session.
    Action(UserAction),
    /// A delta batch appended to the live graph.
    Append(DeltaBatch),
}

/// The ordered record of everything a live session did — the replayable
/// artifact of an exploration over a growing graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveLog {
    /// Events in application order.
    pub events: Vec<LiveEvent>,
}

impl LiveLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("live log serializes")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// An exploration session over a [`LiveGraph`] that may grow mid-session.
pub struct LiveSession<'g> {
    live: &'g LiveGraph,
    config: SessionConfig,
    state: SessionState,
    log: ActionLog,
    view: ViewState,
    /// Search index cached with the generation it was built at;
    /// re-indexed lazily after an append.
    search: Option<(u64, SearchEngine)>,
    events: LiveLog,
}

impl<'g> LiveSession<'g> {
    /// A fresh live session over `live`.
    pub fn new(live: &'g LiveGraph, config: SessionConfig) -> Self {
        Self {
            live,
            config,
            state: SessionState {
                timeline: Timeline::new(),
                path: ExplorationPath::new(),
                query: Default::default(),
            },
            log: ActionLog::new(),
            view: ViewState::empty(),
            search: None,
            events: LiveLog::new(),
        }
    }

    /// The live graph under exploration.
    pub fn live(&self) -> &'g LiveGraph {
        self.live
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// The durable session state (timeline, path, current query).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The user-action log (appends excluded; see [`LiveSession::events`]).
    pub fn action_log(&self) -> &ActionLog {
        &self.log
    }

    /// Every event — actions and appends — in order.
    pub fn events(&self) -> &LiveLog {
        &self.events
    }

    /// Apply one user action against the current graph snapshot and
    /// return the updated view. The heavy lifting runs on a transient
    /// [`Session`] scoped to a read guard; timeline/path/query/log and
    /// the rendered view **move** in and back out (no per-action copies
    /// of the session history), and the live graph's shared cache keeps
    /// densities warm.
    pub fn apply(&mut self, action: UserAction) -> &ViewState {
        self.events.events.push(LiveEvent::Action(action.clone()));
        let reader = self.live.read();
        let generation = reader.generation();
        let engine = match self.search.take() {
            Some((built_at, engine)) if built_at == generation => engine,
            _ => SearchEngine::build(reader.kg(), self.config.search),
        };
        let mut session = Session::with_single_engine(reader.handle(), self.config, engine);
        let state = std::mem::replace(
            &mut self.state,
            SessionState {
                timeline: Timeline::new(),
                path: ExplorationPath::new(),
                query: Default::default(),
            },
        );
        session.import_state(
            state,
            std::mem::take(&mut self.log),
            std::mem::replace(&mut self.view, ViewState::empty()),
        );
        session.apply(action);
        let (state, log, view, engine) = session.dissolve();
        self.state = state;
        self.log = log;
        self.view = view;
        let engine = engine.expect("live sessions run on the single backend");
        self.search = Some((generation, engine));
        &self.view
    }

    /// Append a delta to the live graph (recorded in the event log). The
    /// view is *not* recomputed — like every store mutation it becomes
    /// visible at the next action, keeping actions the only points where
    /// the interface changes under the user.
    pub fn append(&mut self, delta: &DeltaBatch) -> AppliedDelta {
        self.events.events.push(LiveEvent::Append(delta.clone()));
        self.live.append(delta)
    }

    /// Convenience: submit a keyword query.
    pub fn submit_keywords(&mut self, q: &str) -> &ViewState {
        self.apply(UserAction::SubmitKeywords { query: q.into() })
    }

    /// Convenience: click an entity (investigation).
    pub fn click_entity(&mut self, entity: pivote_kg::EntityId) -> &ViewState {
        self.apply(UserAction::ClickEntity { entity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig, EntityId, KnowledgeGraph};

    fn base() -> KnowledgeGraph {
        generate(&DatagenConfig::tiny())
    }

    fn film_seed(kg: &KnowledgeGraph) -> EntityId {
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[0]
    }

    fn delta_for(kg: &KnowledgeGraph, seed: EntityId) -> DeltaBatch {
        // append a brand-new film sharing the seed's entire cast, so an
        // investigation from the seed must surface it mid-session
        let starring = kg.predicate("starring").unwrap();
        let mut d = DeltaBatch::new();
        for &star in kg.objects(seed, starring) {
            d.triple(
                "Fresh_Live_Film",
                "starring",
                kg.entity_name(star).to_owned(),
            );
        }
        d.typed("Fresh_Live_Film", "Film")
            .typed("Fresh_Live_Film", "Work")
            .label("Fresh_Live_Film", "Fresh Live Film");
        for c in kg.categories_of(seed) {
            d.categorized("Fresh_Live_Film", kg.category_name(c).to_owned());
        }
        d
    }

    #[test]
    fn session_sees_appends_at_the_next_action() {
        let kg = base();
        let seed = film_seed(&kg);
        let delta = delta_for(&kg, seed);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());

        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        s.append(&delta);
        // the view does not change until the next action
        let unchanged: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, unchanged);

        // re-running the same investigation now reflects the new triples:
        // results must equal a fresh session over the rebuilt union
        s.apply(UserAction::RemoveSeed { entity: seed });
        s.click_entity(seed);
        let after: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();

        let mut union = base();
        union.apply(&delta);
        let mut fresh = Session::with_defaults(&union);
        fresh.click_entity(seed);
        let want: Vec<EntityId> = fresh.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(after, want, "post-append view must match the rebuilt union");
        let new_film = union.entity("Fresh_Live_Film").unwrap();
        assert!(
            after.contains(&new_film),
            "the appended film must surface in the recommendations"
        );
    }

    #[test]
    fn non_recomputing_actions_preserve_the_view() {
        // a duplicate click is a no-op and a lookup only sets the focus
        // — neither may wipe the recommendation area (regression: the
        // transient session must inherit the full rendered view, not
        // start from empty)
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.click_entity(seed);
        let before: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert!(!before.is_empty());

        s.click_entity(seed); // duplicate: no-op in a plain Session
        let after_dup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_dup, "duplicate click must not wipe the view");

        s.apply(UserAction::LookupEntity { entity: seed });
        assert!(s.view().focus.is_some(), "lookup fills the focus");
        let after_lookup: Vec<EntityId> = s.view().entities.iter().map(|re| re.entity).collect();
        assert_eq!(before, after_lookup, "lookup must keep the entities");
    }

    #[test]
    fn replay_live_reproduces_growth_and_rankings() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut original = LiveSession::new(&live, SessionConfig::default());
        original.click_entity(seed);
        original.append(&delta_for(&kg, seed));
        original.apply(UserAction::RemoveSeed { entity: seed });
        original.click_entity(seed);

        // serialize the full event log (appends included) and replay it
        // onto a fresh live graph built from the same base
        let log = LiveLog::from_json(&original.events().to_json()).unwrap();
        assert_eq!(&log, original.events());
        let live2 = LiveGraph::with_threads(base(), 1);
        let replayed = crate::replay::replay_live(&live2, SessionConfig::default(), &log);

        assert_eq!(live2.generation(), 1, "the append replayed");
        assert_eq!(replayed.state().timeline, original.state().timeline);
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| (re.entity, re.score))
                .collect::<Vec<_>>(),
            "live replay must reproduce rankings bit-identically"
        );
    }

    #[test]
    fn timeline_and_path_survive_appends() {
        let kg = base();
        let seed = film_seed(&kg);
        let live = LiveGraph::with_threads(base(), 1);
        let mut s = LiveSession::new(&live, SessionConfig::default());
        s.submit_keywords(&kg.display_name(seed));
        s.append(&delta_for(&kg, seed));
        s.click_entity(seed);
        assert_eq!(s.state().timeline.len(), 2, "search + investigate");
        assert_eq!(s.action_log().len(), 2);
        assert_eq!(s.events().len(), 3, "two actions + one append");
        // the search index was rebuilt exactly once for the new generation
        assert_eq!(s.search.as_ref().unwrap().0, 1);
    }
}

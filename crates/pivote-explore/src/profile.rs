//! Entity profile cards — the presentation area (Fig. 3-d).
//!
//! "Users can look up the profile of a particular entity by clicking it
//! … users can click the entity name, which can be redirected to
//! Wikipedia to learn more information in detail." The Wikipedia hop is
//! reproduced as a URL derived from the entity name; everything else is
//! assembled from the local graph.

use pivote_core::Ranker;
use pivote_kg::EntityId;
use serde::{Deserialize, Serialize};

/// A rendered entity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityProfile {
    /// The entity.
    pub entity: EntityId,
    /// Canonical name (`Forrest_Gump`).
    pub name: String,
    /// Display label ("Forrest Gump").
    pub label: String,
    /// Type names.
    pub types: Vec<String>,
    /// Category names.
    pub categories: Vec<String>,
    /// Literal statements as `(predicate, value)` strings.
    pub attributes: Vec<(String, String)>,
    /// The entity's most discriminative semantic features, rendered, with
    /// `d(π)`.
    pub top_features: Vec<(String, f64)>,
    /// Redirect/disambiguation aliases.
    pub aliases: Vec<String>,
    /// The "learn more" link of the demo UI.
    pub wikipedia_url: String,
}

/// Build the profile of `e`, keeping the `k_features` most discriminative
/// features. Runs through the ranker's [`pivote_core::GraphHandle`], so
/// profiles work identically on single and sharded backends.
pub fn build_profile(ranker: &Ranker<'_>, e: EntityId, k_features: usize) -> EntityProfile {
    let handle = ranker.handle();
    let mut feats: Vec<(String, f64)> = handle
        .features_of(e)
        .into_iter()
        .map(|sf| (handle.feature_display(sf), ranker.discriminability(sf)))
        .collect();
    feats.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    feats.truncate(k_features);
    EntityProfile {
        entity: e,
        name: handle.entity_name(e).to_owned(),
        label: handle.display_name(e),
        types: handle
            .types_of(e)
            .into_iter()
            .map(|t| handle.type_name(t).to_owned())
            .collect(),
        categories: handle
            .categories_of(e)
            .into_iter()
            .map(|c| handle.category_name(c).to_owned())
            .collect(),
        attributes: handle
            .literals(e)
            .into_iter()
            .map(|(p, l)| (handle.predicate_name(p).to_owned(), l.lexical.clone()))
            .collect(),
        top_features: feats,
        aliases: handle.aliases(e).to_vec(),
        wikipedia_url: format!("https://en.wikipedia.org/wiki/{}", handle.entity_name(e)),
    }
}

impl EntityProfile {
    /// Render as a plain-text card.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.label);
        if !self.types.is_empty() {
            let _ = writeln!(out, "types: {}", self.types.join(", "));
        }
        if !self.categories.is_empty() {
            let _ = writeln!(out, "categories: {}", self.categories.join(", "));
        }
        for (p, v) in &self.attributes {
            let _ = writeln!(out, "{p}: {v}");
        }
        if !self.top_features.is_empty() {
            let feats: Vec<&str> = self.top_features.iter().map(|(f, _)| f.as_str()).collect();
            let _ = writeln!(out, "features: {}", feats.join(", "));
        }
        if !self.aliases.is_empty() {
            let _ = writeln!(out, "also known as: {}", self.aliases.join(", "));
        }
        let _ = writeln!(out, "more: {}", self.wikipedia_url);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_core::RankingConfig;
    use pivote_kg::{KgBuilder, KnowledgeGraph, Literal};

    fn ranker_kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let apollo = b.entity("Apollo_13");
        b.label(gump, "Forrest Gump");
        let starring = b.predicate("starring");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.typed(gump, "Film");
        b.categorized(gump, "American films");
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::integer(142));
        b.redirect("Geenbow", gump);
        b.finish()
    }

    #[test]
    fn profile_collects_everything() {
        let kg = ranker_kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let p = build_profile(&ranker, gump, 10);
        assert_eq!(p.label, "Forrest Gump");
        assert_eq!(p.types, vec!["Film".to_owned()]);
        assert_eq!(p.categories, vec!["American films".to_owned()]);
        assert_eq!(p.attributes, vec![("runtime".to_owned(), "142".to_owned())]);
        assert_eq!(p.aliases, vec!["Geenbow".to_owned()]);
        assert!(p.wikipedia_url.ends_with("/Forrest_Gump"));
        assert_eq!(p.top_features.len(), 2);
        // Sinise (extent 1) is more discriminative than Hanks (extent 2)
        assert!(p.top_features[0].0.contains("Gary_Sinise"));
    }

    #[test]
    fn k_features_truncates() {
        let kg = ranker_kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(build_profile(&ranker, gump, 1).top_features.len(), 1);
    }

    #[test]
    fn render_mentions_key_facts() {
        let kg = ranker_kg();
        let ranker = Ranker::new(&kg, RankingConfig::default());
        let gump = kg.entity("Forrest_Gump").unwrap();
        let text = build_profile(&ranker, gump, 5).render();
        for needle in [
            "Forrest Gump",
            "Film",
            "runtime: 142",
            "Geenbow",
            "wikipedia",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}

//! The exploratory path (paper Fig. 4): a graph of visited query states
//! and inspected entities, with edges labeled by the action that moved
//! the user between them.
//!
//! "Users can click the 'view' button if they want to view the
//! exploratory search path and search content."

use serde::{Deserialize, Serialize};

/// Kind of a path node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A query state (corresponds to a timeline entry).
    Query,
    /// An entity the user looked up.
    Entity,
}

/// One node of the exploratory path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathNode {
    /// Node id (dense, insertion order).
    pub id: usize,
    /// Query state or inspected entity.
    pub kind: NodeKind,
    /// Display label.
    pub label: String,
    /// For query nodes: the timeline index holding the full query.
    pub timeline_index: Option<usize>,
}

/// One edge: the action that led from one node to another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathEdge {
    /// Source node id.
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Action verb ("search", "investigate", "pivot", "lookup",
    /// "revisit", …).
    pub action: String,
}

/// The exploratory path graph of one session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplorationPath {
    nodes: Vec<PathNode>,
    edges: Vec<PathEdge>,
    /// The node the user is currently at.
    current: Option<usize>,
}

impl ExplorationPath {
    /// Empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and connect it from the current node (if any) with
    /// `action`. The new node becomes current. Returns its id.
    pub fn advance(
        &mut self,
        kind: NodeKind,
        label: impl Into<String>,
        timeline_index: Option<usize>,
        action: impl Into<String>,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PathNode {
            id,
            kind,
            label: label.into(),
            timeline_index,
        });
        if let Some(cur) = self.current {
            self.edges.push(PathEdge {
                from: cur,
                to: id,
                action: action.into(),
            });
        }
        self.current = Some(id);
        id
    }

    /// Add a side branch (e.g. an entity lookup) without moving the
    /// current pointer. Returns the new node id.
    pub fn branch(
        &mut self,
        kind: NodeKind,
        label: impl Into<String>,
        action: impl Into<String>,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PathNode {
            id,
            kind,
            label: label.into(),
            timeline_index: None,
        });
        if let Some(cur) = self.current {
            self.edges.push(PathEdge {
                from: cur,
                to: id,
                action: action.into(),
            });
        }
        id
    }

    /// Jump back to an existing node (revisit), adding a revisit edge.
    pub fn jump_to(&mut self, node: usize) {
        if node >= self.nodes.len() {
            return;
        }
        if let Some(cur) = self.current {
            if cur != node {
                self.edges.push(PathEdge {
                    from: cur,
                    to: node,
                    action: "revisit".to_owned(),
                });
            }
        }
        self.current = Some(node);
    }

    /// Find the query node recorded for a timeline index.
    pub fn node_for_timeline(&self, timeline_index: usize) -> Option<usize> {
        self.nodes
            .iter()
            .find(|n| n.timeline_index == Some(timeline_index))
            .map(|n| n.id)
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[PathNode] {
        &self.nodes
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[PathEdge] {
        &self.edges
    }

    /// The node the user is at, if any.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The main trail: query nodes in visit order (ignoring lookups).
    pub fn query_trail(&self) -> Vec<&PathNode> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Query)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_links_nodes() {
        let mut p = ExplorationPath::new();
        let a = p.advance(NodeKind::Query, "q0", Some(0), "search");
        let b = p.advance(NodeKind::Query, "q1", Some(1), "investigate");
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.edges().len(), 1);
        assert_eq!(p.edges()[0].action, "investigate");
        assert_eq!(p.current(), Some(1));
    }

    #[test]
    fn branch_keeps_current() {
        let mut p = ExplorationPath::new();
        p.advance(NodeKind::Query, "q0", Some(0), "search");
        let e = p.branch(NodeKind::Entity, "Forrest Gump", "lookup");
        assert_eq!(p.current(), Some(0));
        assert_eq!(p.nodes()[e].kind, NodeKind::Entity);
        assert_eq!(p.edges().last().unwrap().action, "lookup");
    }

    #[test]
    fn jump_to_adds_revisit_edge() {
        let mut p = ExplorationPath::new();
        p.advance(NodeKind::Query, "q0", Some(0), "search");
        p.advance(NodeKind::Query, "q1", Some(1), "pivot");
        p.jump_to(0);
        assert_eq!(p.current(), Some(0));
        assert_eq!(p.edges().last().unwrap().action, "revisit");
        // jumping to self or out of range is a no-op edge-wise
        let edges = p.edges().len();
        p.jump_to(0);
        p.jump_to(99);
        assert_eq!(p.edges().len(), edges);
    }

    #[test]
    fn query_trail_filters_lookups() {
        let mut p = ExplorationPath::new();
        p.advance(NodeKind::Query, "q0", Some(0), "search");
        p.branch(NodeKind::Entity, "e", "lookup");
        p.advance(NodeKind::Query, "q1", Some(1), "investigate");
        assert_eq!(p.query_trail().len(), 2);
    }

    #[test]
    fn node_for_timeline_lookup() {
        let mut p = ExplorationPath::new();
        p.advance(NodeKind::Query, "q0", Some(7), "search");
        assert_eq!(p.node_for_timeline(7), Some(0));
        assert_eq!(p.node_for_timeline(8), None);
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = ExplorationPath::new();
        p.advance(NodeKind::Query, "q0", Some(0), "search");
        let json = serde_json::to_string(&p).unwrap();
        let back: ExplorationPath = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

//! The query timeline (Fig. 3-g): every query state the session has
//! visited, revisitable by index.
//!
//! "Users can revisit the queries in the timeline … supports them to
//! compare the information by conveniently revisiting historical
//! queries."

use crate::query::ExplorationQuery;
use serde::{Deserialize, Serialize};

/// One timeline entry: a query state plus how the user got there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Position in the timeline (0-based).
    pub index: usize,
    /// The verb of the action that produced this state.
    pub action: String,
    /// The query state after the action.
    pub query: ExplorationQuery,
    /// One-line human-readable description.
    pub summary: String,
}

/// The append-only query history of a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a new query state; returns its index.
    pub fn record(
        &mut self,
        action: impl Into<String>,
        query: ExplorationQuery,
        summary: impl Into<String>,
    ) -> usize {
        let index = self.entries.len();
        self.entries.push(TimelineEntry {
            index,
            action: action.into(),
            query,
            summary: summary.into(),
        });
        index
    }

    /// Entry at `index`.
    pub fn get(&self, index: usize) -> Option<&TimelineEntry> {
        self.entries.get(index)
    }

    /// Most recent entry.
    pub fn last(&self) -> Option<&TimelineEntry> {
        self.entries.last()
    }

    /// Number of recorded states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TimelineEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_revisit() {
        let mut t = Timeline::new();
        let q1 = ExplorationQuery::keywords("a");
        let q2 = ExplorationQuery::keywords("b");
        let i1 = t.record("search", q1.clone(), "q1");
        let i2 = t.record("search", q2.clone(), "q2");
        assert_eq!((i1, i2), (0, 1));
        assert_eq!(t.get(0).unwrap().query, q1);
        assert_eq!(t.get(1).unwrap().query, q2);
        assert_eq!(t.last().unwrap().index, 1);
        assert!(t.get(2).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iteration_is_chronological() {
        let mut t = Timeline::new();
        for i in 0..3 {
            t.record("search", ExplorationQuery::keywords(format!("q{i}")), "");
        }
        let idx: Vec<usize> = t.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Timeline::new();
        t.record("search", ExplorationQuery::keywords("x"), "x");
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}

//! User actions — every interaction the PivotE interface supports (§2.1).
//!
//! The paper's UI turns clicks into query updates: "The queries are
//! dynamically formulated by tracing the users' dynamic clicking
//! (exploration) behaviors." Each variant corresponds to one affordance
//! of Fig. 3.

use pivote_core::SemanticFeature;
use pivote_kg::EntityId;
use serde::{Deserialize, Serialize};

/// One user interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserAction {
    /// Type keywords into the query area (Fig. 3-a) and submit.
    SubmitKeywords {
        /// The raw keyword string.
        query: String,
    },
    /// Click an entity in the recommendation area (Fig. 3-c): add it as
    /// an example seed — the *investigation* operation.
    ClickEntity {
        /// The clicked entity.
        entity: EntityId,
    },
    /// Select a semantic feature (Fig. 3-e): add it as a required query
    /// condition.
    SelectFeature {
        /// The selected feature.
        feature: SemanticFeature,
    },
    /// Remove a seed from the query area (Fig. 3-b).
    RemoveSeed {
        /// The seed to drop.
        entity: EntityId,
    },
    /// Remove a required feature from the query area (Fig. 3-b).
    RemoveFeature {
        /// The feature to drop.
        feature: SemanticFeature,
    },
    /// Double-click a feature/entity image: pivot the x-axis into the
    /// anchor's domain — the *browse* operation (§3.2).
    Pivot {
        /// The feature to pivot through.
        feature: SemanticFeature,
    },
    /// Click an entity name to inspect its profile (Fig. 3-d).
    LookupEntity {
        /// The entity to present.
        entity: EntityId,
    },
    /// Revisit a historical query from the timeline (Fig. 3-g).
    RevisitQuery {
        /// Timeline index to restore.
        index: usize,
    },
    /// Clear the whole query.
    ClearQuery,
}

impl UserAction {
    /// Short verb used in timeline summaries and path-edge labels.
    pub fn verb(&self) -> &'static str {
        match self {
            UserAction::SubmitKeywords { .. } => "search",
            UserAction::ClickEntity { .. } => "investigate",
            UserAction::SelectFeature { .. } => "refine",
            UserAction::RemoveSeed { .. } | UserAction::RemoveFeature { .. } => "remove",
            UserAction::Pivot { .. } => "pivot",
            UserAction::LookupEntity { .. } => "lookup",
            UserAction::RevisitQuery { .. } => "revisit",
            UserAction::ClearQuery => "clear",
        }
    }

    /// Whether the action changes the current query (and therefore the
    /// recommendations).
    pub fn mutates_query(&self) -> bool {
        !matches!(self, UserAction::LookupEntity { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_cover_all_variants() {
        let a = UserAction::SubmitKeywords {
            query: "tom hanks".into(),
        };
        assert_eq!(a.verb(), "search");
        assert!(a.mutates_query());
        let l = UserAction::LookupEntity {
            entity: EntityId::new(0),
        };
        assert_eq!(l.verb(), "lookup");
        assert!(!l.mutates_query());
    }

    #[test]
    fn actions_serialize() {
        let a = UserAction::ClickEntity {
            entity: EntityId::new(3),
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: UserAction = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

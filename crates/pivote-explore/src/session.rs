//! The exploration session: PivotE's interaction loop.
//!
//! A [`Session`] owns the search engine, the recommendation engine, the
//! timeline and the exploratory path, and exposes a single entry point —
//! [`Session::apply`] — that turns every [`UserAction`] into an updated
//! [`ViewState`], mirroring the paper's architecture (Fig. 2): the
//! interface forwards clicks, the engines recompute the recommendation
//! areas, the heat map explains them.

use crate::events::UserAction;
use crate::path::{ExplorationPath, NodeKind};
use crate::profile::{build_profile, EntityProfile};
use crate::query::ExplorationQuery;
use crate::timeline::Timeline;
use pivote_core::{
    Expander, GraphHandle, HeatMap, QueryContext, RankedEntity, RankedFeature, RankingConfig,
    SemanticFeature, SfQuery,
};
use pivote_kg::{EntityId, KnowledgeGraph, ShardedGraph, TypeId};
use pivote_search::{CorpusStats, Hit, Scorer, SearchConfig, SearchEngine};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Session tunables.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Entities shown in the recommendation area (Fig. 3-c x-axis).
    pub k_entities: usize,
    /// Features shown in the recommendation area (Fig. 3-e y-axis).
    pub k_features: usize,
    /// Features listed on an entity profile card.
    pub k_profile_features: usize,
    /// How many top search hits act as pseudo-seeds for feature
    /// recommendation after a keyword query.
    pub pseudo_seeds_from_search: usize,
    /// Automatically restrict investigations to the seeds' most specific
    /// common type (the x-axis is "mostly the same type").
    pub auto_type_filter: bool,
    /// Cap features per predicate+direction in the recommendation area so
    /// the y-axis covers many aspects (0 disables diversification).
    pub diversify_features: usize,
    /// Ranking model configuration.
    pub ranking: RankingConfig,
    /// Search engine configuration.
    pub search: SearchConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            k_entities: 20,
            k_features: 15,
            k_profile_features: 10,
            pseudo_seeds_from_search: 5,
            auto_type_filter: true,
            diversify_features: 3,
            ranking: RankingConfig::default(),
            search: SearchConfig::default(),
        }
    }
}

/// Everything the interface displays for the current query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewState {
    /// The query area (Fig. 3-a/b).
    pub query: ExplorationQuery,
    /// Entity recommendations (Fig. 3-c), rank order.
    pub entities: Vec<RankedEntity>,
    /// Feature recommendations (Fig. 3-e), rank order.
    pub features: Vec<RankedFeature>,
    /// The explanation heat map (Fig. 3-f) over the two axes above.
    pub heatmap: HeatMap,
    /// The entity presentation area (Fig. 3-d), if an entity is focused.
    pub focus: Option<EntityProfile>,
}

impl ViewState {
    /// The blank view (no query, no recommendations, no focus).
    pub fn empty() -> Self {
        Self {
            query: ExplorationQuery::default(),
            entities: Vec::new(),
            features: Vec::new(),
            heatmap: HeatMap {
                entities: Vec::new(),
                features: Vec::new(),
                values: Vec::new(),
                levels: Vec::new(),
            },
            focus: None,
        }
    }
}

/// Serializable session state (timeline + path + current query), the
/// persistence format behind "revisit historical queries".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// The full query history.
    pub timeline: Timeline,
    /// The exploratory path graph.
    pub path: ExplorationPath,
    /// The current query.
    pub query: ExplorationQuery,
}

/// The keyword-search component, per backend: one index over the single
/// graph, or one index per shard with an owned-entity merge. Public so
/// the live-session layer can carry prebuilt engines across graph
/// generations (and across compactions, which change the shard count)
/// without re-indexing when nothing changed.
///
/// Engines are `Arc`-held, so the backend is `Clone` at pointer cost:
/// the live search cache hands each concurrent search its own cheap
/// clone and N searches index-share while running **concurrently** —
/// the cache's mutex guards only the refresh bookkeeping, never a
/// query.
#[derive(Clone)]
pub enum SearchBackend {
    /// One engine over the whole graph (`Arc`: shared, not copied, by
    /// every concurrent search and every prepared snapshot it is
    /// attached to).
    Single(Arc<SearchEngine>),
    /// One engine per shard (indexed over the shard-local graph, with
    /// related-names neighbours selected in global-id order) plus the
    /// globally-merged corpus statistics every shard scores against.
    /// Hits are filtered to owned entities (ghosts are re-indexed by
    /// their home shard), remapped to global ids and merged by
    /// `(score desc, id asc)` — the same scores and order as the
    /// single-graph engine, bit for bit.
    Sharded {
        /// One engine per shard, in shard order.
        engines: Vec<Arc<SearchEngine>>,
        /// Merged owned-document statistics across all shards.
        corpus: Arc<CorpusStats>,
    },
}

/// Merge per-shard indexes into the global corpus statistics, counting
/// each owned document once (ghost copies are skipped — their home shard
/// re-indexes them).
pub fn merge_corpus_stats(engines: &[Arc<SearchEngine>], sg: &ShardedGraph) -> CorpusStats {
    let mut corpus = CorpusStats::new();
    for (engine, shard) in engines.iter().zip(sg.shards()) {
        corpus.absorb(engine.index(), |d| shard.is_owned(EntityId::new(d)));
    }
    corpus
}

/// Top-`k` keyword hits of a [`SearchBackend`] — the merge logic shared
/// by [`Session::search_hits`] and the serving layer (which queries the
/// backend directly, without building a session).
///
/// # Panics
/// When the backend is sharded and `sharded` is `None`.
pub fn search_backend_hits(
    search: &SearchBackend,
    sharded: Option<&ShardedGraph>,
    query: &str,
    k: usize,
) -> Vec<Hit> {
    match search {
        SearchBackend::Single(engine) => engine.search(query, k),
        SearchBackend::Sharded { engines, corpus } => {
            let sg = sharded.expect("sharded search backend needs its sharded graph");
            let mut hits: Vec<Hit> = engines
                .iter()
                .zip(sg.shards())
                .flat_map(|(engine, shard)| {
                    // fetch ALL of the shard's matches, not the top k:
                    // ghost hits are dropped below, and truncating
                    // before the ghost filter could starve owned
                    // matches ranked behind k ghosts
                    engine
                        .search_in(query, usize::MAX, Scorer::MixtureLm, corpus.as_ref())
                        .into_iter()
                        // drop ghost hits: the home shard re-indexes them
                        .filter(|h| shard.is_owned(h.entity))
                        .map(|h| Hit {
                            entity: shard.to_global(h.entity),
                            score: h.score,
                        })
                })
                .collect();
            hits.sort_unstable_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.entity.cmp(&b.entity))
            });
            hits.truncate(k);
            hits
        }
    }
}

/// An interactive exploration session over one knowledge graph — single
/// or sharded backend, behind one [`GraphHandle`].
pub struct Session<'kg> {
    handle: GraphHandle<'kg>,
    search: SearchBackend,
    expander: Expander<'kg>,
    config: SessionConfig,
    timeline: Timeline,
    path: ExplorationPath,
    view: ViewState,
    log: crate::replay::ActionLog,
}

impl<'kg> Session<'kg> {
    /// Build a session (indexes the graph for search) with a fresh
    /// [`QueryContext`] shared by every engine the session drives.
    pub fn new(kg: &'kg KnowledgeGraph, config: SessionConfig) -> Self {
        Self::with_context(Arc::new(QueryContext::new(kg)), config)
    }

    /// Build a session on an existing execution context — replayed or
    /// concurrent sessions over one graph share its memoized state.
    pub fn with_context(ctx: Arc<QueryContext<'kg>>, config: SessionConfig) -> Self {
        Self::with_handle(GraphHandle::Single(ctx), config)
    }

    /// Build a session over a sharded graph with a fresh sharded context.
    pub fn sharded(sg: &'kg ShardedGraph, config: SessionConfig) -> Self {
        Self::with_handle(GraphHandle::sharded(sg), config)
    }

    /// Build a session on any backend handle — every query path (search,
    /// expansion, heat map, profiles, replay) runs through it unchanged.
    pub fn with_handle(handle: GraphHandle<'kg>, config: SessionConfig) -> Self {
        let search = match &handle {
            GraphHandle::Single(ctx) => {
                SearchBackend::Single(Arc::new(SearchEngine::build(ctx.kg(), config.search)))
            }
            GraphHandle::Sharded(ctx) => {
                let sg = ctx.graph();
                let engines: Vec<Arc<SearchEngine>> = sg
                    .shards()
                    .iter()
                    .map(|s| {
                        Arc::new(SearchEngine::build_keyed(
                            s.graph(),
                            config.search,
                            |local| s.to_global(local).raw(),
                        ))
                    })
                    .collect();
                let corpus = Arc::new(merge_corpus_stats(&engines, sg));
                SearchBackend::Sharded { engines, corpus }
            }
        };
        Self {
            search,
            expander: Expander::with_handle(handle.clone(), config.ranking),
            handle,
            config,
            timeline: Timeline::new(),
            path: ExplorationPath::new(),
            view: ViewState::empty(),
            log: crate::replay::ActionLog::new(),
        }
    }

    /// Session with default configuration.
    pub fn with_defaults(kg: &'kg KnowledgeGraph) -> Self {
        Self::new(kg, SessionConfig::default())
    }

    /// Build a single-backend session around a **prebuilt** search
    /// engine, skipping the (expensive) indexing pass — how the
    /// live-session layer re-homes a session onto a fresh graph snapshot
    /// without re-indexing when the graph generation hasn't changed.
    ///
    /// # Panics
    /// When `handle` is sharded (sharded search is a per-shard engine
    /// set; use [`Session::with_search`]).
    pub fn with_single_engine(
        handle: GraphHandle<'kg>,
        config: SessionConfig,
        engine: SearchEngine,
    ) -> Self {
        Self::with_search(handle, config, SearchBackend::Single(Arc::new(engine)))
    }

    /// Build a session around a **prebuilt** [`SearchBackend`] — the
    /// generalization of [`Session::with_single_engine`] that also serves
    /// the sharded live path, where the engine set is one index per
    /// shard.
    ///
    /// # Panics
    /// When the backend variant does not match the handle, or a sharded
    /// engine set's length does not match the graph's shard count (a
    /// stale set from before an append or a compaction).
    pub fn with_search(
        handle: GraphHandle<'kg>,
        config: SessionConfig,
        search: SearchBackend,
    ) -> Self {
        match (&handle, &search) {
            (GraphHandle::Single(_), SearchBackend::Single(_)) => {}
            (GraphHandle::Sharded(ctx), SearchBackend::Sharded { engines, .. }) => {
                assert_eq!(
                    engines.len(),
                    ctx.graph().shard_count(),
                    "per-shard engine set must match the shard count"
                );
            }
            _ => panic!("search backend variant must match the graph handle"),
        }
        Self {
            search,
            expander: Expander::with_handle(handle.clone(), config.ranking),
            handle,
            config,
            timeline: Timeline::new(),
            path: ExplorationPath::new(),
            view: ViewState::empty(),
            log: crate::replay::ActionLog::new(),
        }
    }

    /// Restore persistent state (timeline, path), the action log and the
    /// full current view **without** recomputing — the fast half of a
    /// live-session re-home. The view carries the query *and* the last
    /// rendered recommendations, so actions that don't recompute (no-op
    /// clicks, entity lookups) behave exactly as they would on a
    /// fixed-snapshot session.
    pub fn import_state(
        &mut self,
        state: SessionState,
        log: crate::replay::ActionLog,
        view: ViewState,
    ) {
        self.timeline = state.timeline;
        self.path = state.path;
        self.view = view;
        self.view.query = state.query;
        self.log = log;
    }

    /// Tear the session into its durable parts — state, log, view, and
    /// the owned [`SearchBackend`] — so a live session can carry them
    /// across graph generations without cloning and without keeping this
    /// session's graph borrow alive.
    pub fn dissolve(
        self,
    ) -> (
        SessionState,
        crate::replay::ActionLog,
        ViewState,
        SearchBackend,
    ) {
        let state = SessionState {
            timeline: self.timeline,
            path: self.path,
            query: self.view.query.clone(),
        };
        (state, self.log, self.view, self.search)
    }

    /// The shared query-execution context (probability caches, worker
    /// pool) every engine of this session runs on.
    ///
    /// # Panics
    /// When the session runs on a sharded backend; use
    /// [`Session::handle`].
    pub fn query_context(&self) -> &Arc<QueryContext<'kg>> {
        self.expander.context()
    }

    /// The backend-agnostic graph handle this session runs on.
    pub fn handle(&self) -> &GraphHandle<'kg> {
        &self.handle
    }

    /// The current view.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// The query timeline (Fig. 3-g).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The exploratory path (Fig. 4).
    pub fn path(&self) -> &ExplorationPath {
        &self.path
    }

    /// The knowledge graph under exploration — single backend only.
    ///
    /// # Panics
    /// When the session runs on a sharded backend; use
    /// [`Session::handle`].
    pub fn kg(&self) -> &'kg KnowledgeGraph {
        self.handle
            .kg()
            .expect("Session::kg is single-backend only; use Session::handle")
    }

    /// The search engine component — single backend only.
    ///
    /// # Panics
    /// When the session runs on a sharded backend (search is then a
    /// per-shard engine set merged by [`Session::search_hits`]).
    pub fn search_engine(&self) -> &SearchEngine {
        match &self.search {
            SearchBackend::Single(engine) => engine,
            SearchBackend::Sharded { .. } => {
                panic!("Session::search_engine is single-backend only")
            }
        }
    }

    /// Top-`k` keyword hits on whichever search backend this session has.
    pub fn search_hits(&self, query: &str, k: usize) -> Vec<Hit> {
        search_backend_hits(&self.search, self.handle.sharded_graph(), query, k)
    }

    /// The recommendation engine component.
    pub fn expander(&self) -> &Expander<'kg> {
        &self.expander
    }

    /// Every action applied to this session, in order (for replay).
    pub fn action_log(&self) -> &crate::replay::ActionLog {
        &self.log
    }

    /// Apply one user action and return the updated view — the paper's
    /// "queries are dynamically formulated by tracing the users' dynamic
    /// clicking behaviors".
    pub fn apply(&mut self, action: UserAction) -> &ViewState {
        self.log.push(action.clone());
        match action.clone() {
            UserAction::SubmitKeywords { query } => {
                // A fresh keyword query starts a new investigation.
                self.view.query = ExplorationQuery::keywords(query);
                self.recompute();
                self.record(&action);
            }
            UserAction::ClickEntity { entity } => {
                if self.view.query.add_seed(entity) {
                    if self.config.auto_type_filter {
                        let t = self.common_specific_type(&self.view.query.sf.seeds);
                        self.view.query.set_type_filter(t);
                    }
                    self.recompute();
                    self.record(&action);
                }
            }
            UserAction::SelectFeature { feature } => {
                if self.view.query.add_feature(feature) {
                    self.recompute();
                    self.record(&action);
                }
            }
            UserAction::RemoveSeed { entity } => {
                if self.view.query.remove_seed(entity) {
                    if self.config.auto_type_filter {
                        let t = self.common_specific_type(&self.view.query.sf.seeds);
                        self.view.query.set_type_filter(t);
                    }
                    self.recompute();
                    self.record(&action);
                }
            }
            UserAction::RemoveFeature { feature } => {
                if self.view.query.remove_feature(feature) {
                    self.recompute();
                    self.record(&action);
                }
            }
            UserAction::Pivot { feature } => {
                // Browse: the x-axis becomes the anchor feature's extent
                // domain.
                let mut sf = SfQuery::from_features(vec![feature]);
                sf.type_filter = self.dominant_type(feature);
                self.view.query = ExplorationQuery { keywords: None, sf };
                self.recompute();
                self.record(&action);
            }
            UserAction::LookupEntity { entity } => {
                self.view.focus = Some(build_profile(
                    self.expander.ranker(),
                    entity,
                    self.config.k_profile_features,
                ));
                self.path.branch(
                    NodeKind::Entity,
                    self.handle.display_name(entity),
                    action.verb(),
                );
            }
            UserAction::RevisitQuery { index } => {
                if let Some(entry) = self.timeline.get(index) {
                    self.view.query = entry.query.clone();
                    self.recompute();
                    match self.path.node_for_timeline(index) {
                        Some(node) => self.path.jump_to(node),
                        None => {
                            let label = self.view.query.summary_with(&self.handle);
                            self.path
                                .advance(NodeKind::Query, label, Some(index), action.verb());
                        }
                    }
                }
            }
            UserAction::ClearQuery => {
                self.view = ViewState::empty();
                self.record(&action);
            }
        }
        &self.view
    }

    /// Convenience: submit a keyword query.
    pub fn submit_keywords(&mut self, q: &str) -> &ViewState {
        self.apply(UserAction::SubmitKeywords { query: q.into() })
    }

    /// Convenience: click an entity (investigation).
    pub fn click_entity(&mut self, entity: EntityId) -> &ViewState {
        self.apply(UserAction::ClickEntity { entity })
    }

    /// Convenience: select a feature as a query condition.
    pub fn select_feature(&mut self, feature: SemanticFeature) -> &ViewState {
        self.apply(UserAction::SelectFeature { feature })
    }

    /// Convenience: pivot through a feature (browse).
    pub fn pivot(&mut self, feature: SemanticFeature) -> &ViewState {
        self.apply(UserAction::Pivot { feature })
    }

    /// Convenience: look up an entity profile.
    pub fn lookup(&mut self, entity: EntityId) -> &ViewState {
        self.apply(UserAction::LookupEntity { entity })
    }

    /// Export the persistent state (timeline, path, current query).
    pub fn export_state(&self) -> SessionState {
        SessionState {
            timeline: self.timeline.clone(),
            path: self.path.clone(),
            query: self.view.query.clone(),
        }
    }

    /// Export the persistent state as pretty JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string_pretty(&self.export_state()).expect("session state serializes")
    }

    /// Restore a previously exported state and recompute the view.
    pub fn restore_state(&mut self, state: SessionState) {
        self.timeline = state.timeline;
        self.path = state.path;
        self.view.query = state.query;
        self.recompute();
    }

    // ---- internals -----------------------------------------------------

    fn record(&mut self, action: &UserAction) {
        let summary = self.view.query.summary_with(&self.handle);
        let index = self
            .timeline
            .record(action.verb(), self.view.query.clone(), summary.clone());
        self.path
            .advance(NodeKind::Query, summary, Some(index), action.verb());
    }

    /// Recompute entities/features/heat map for the current query.
    fn recompute(&mut self) {
        let q = &self.view.query;
        // Fetch extra features so per-predicate diversification has a
        // pool to reorder before truncation.
        let feature_pool = if self.config.diversify_features > 0 {
            self.config.k_features * 4
        } else {
            self.config.k_features
        };
        let (entities, mut features) = if !q.sf.is_empty() {
            let res = self
                .expander
                .expand(&q.sf, self.config.k_entities, feature_pool);
            (res.entities, res.features)
        } else if let Some(keywords) = &q.keywords {
            let hits = self.search_hits(keywords, self.config.k_entities);
            let entities: Vec<RankedEntity> = hits
                .iter()
                .map(|h| RankedEntity {
                    entity: h.entity,
                    score: h.score,
                })
                .collect();
            // Recommend features for the top hits as pseudo-seeds. Hits of
            // a keyword query mix types (films, actors, cities …), and the
            // commonality product over a heterogeneous seed set collapses
            // to zero — so only hits sharing a type with the best hit act
            // as pseudo-seeds, with a single-seed fallback.
            let pseudo: Vec<EntityId> = match hits.first() {
                Some(top) => {
                    let top_types: Vec<TypeId> = self.handle.types_of(top.entity);
                    hits.iter()
                        .map(|h| h.entity)
                        .filter(|&e| {
                            e == top.entity
                                || self
                                    .handle
                                    .types_of(e)
                                    .iter()
                                    .any(|t| top_types.contains(t))
                        })
                        .take(self.config.pseudo_seeds_from_search)
                        .collect()
                }
                None => Vec::new(),
            };
            let mut features = self.expander.ranker().rank_features(&pseudo);
            if features.is_empty() && pseudo.len() > 1 {
                features = self.expander.ranker().rank_features(&pseudo[..1]);
            }
            features.truncate(feature_pool);
            (entities, features)
        } else {
            (Vec::new(), Vec::new())
        };
        if self.config.diversify_features > 0 {
            features = pivote_core::diversify_features(&features, self.config.diversify_features);
        }
        features.truncate(self.config.k_features);
        let axis: Vec<EntityId> = entities.iter().map(|re| re.entity).collect();
        self.view.heatmap = HeatMap::compute(self.expander.ranker(), &axis, &features);
        self.view.entities = entities;
        self.view.features = features;
    }

    /// The most specific (smallest-extent) type shared by all seeds.
    fn common_specific_type(&self, seeds: &[EntityId]) -> Option<TypeId> {
        let mut iter = seeds.iter();
        let first = iter.next()?;
        let mut shared: Vec<TypeId> = self.handle.types_of(*first);
        for &e in iter {
            let types: Vec<TypeId> = self.handle.types_of(e);
            shared.retain(|t| types.contains(t));
        }
        shared
            .into_iter()
            .min_by_key(|&t| self.handle.type_extent_len(t))
    }

    /// The dominant type of a feature's extent — where a pivot lands.
    fn dominant_type(&self, feature: SemanticFeature) -> Option<TypeId> {
        let extent = self.handle.feature_extent(feature);
        let mut counts: std::collections::HashMap<TypeId, usize> = std::collections::HashMap::new();
        for &e in extent.as_ref() {
            for t in self.handle.types_of(e) {
                *counts.entry(t).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| {
                a.1.cmp(&b.1)
                    // tie: prefer the more specific (smaller) type
                    .then_with(|| {
                        self.handle
                            .type_extent_len(b.0)
                            .cmp(&self.handle.type_extent_len(a.0))
                    })
                    .then_with(|| b.0.cmp(&a.0))
            })
            .map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_core::Direction;
    use pivote_kg::{generate, DatagenConfig};

    fn session_kg() -> KnowledgeGraph {
        generate(&DatagenConfig::tiny())
    }

    #[test]
    fn keyword_search_fills_view() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let label = kg.display_name(f);
        let view = s.submit_keywords(&label);
        assert!(!view.entities.is_empty());
        assert!(!view.features.is_empty());
        assert_eq!(view.heatmap.width(), view.entities.len());
        assert_eq!(view.heatmap.height(), view.features.len());
        assert_eq!(s.timeline().len(), 1);
        assert_eq!(s.path().nodes().len(), 1);
    }

    #[test]
    fn click_entity_starts_investigation_with_type_filter() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let view = s.click_entity(f);
        assert_eq!(view.query.sf.seeds, vec![f]);
        // auto type filter picks Film (smaller extent than Work)
        assert_eq!(view.query.sf.type_filter, Some(film));
        for re in &view.entities {
            assert!(kg.has_type(re.entity, film));
        }
    }

    #[test]
    fn duplicate_click_is_ignored() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        s.click_entity(f);
        let before = s.timeline().len();
        s.click_entity(f);
        assert_eq!(s.timeline().len(), before, "no-op must not pollute history");
    }

    #[test]
    fn select_feature_filters_results() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let starring = kg.predicate("starring").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        // most popular actor
        let a = *kg
            .type_extent(actor)
            .iter()
            .max_by_key(|&&a| kg.subjects(a, starring).len())
            .unwrap();
        let sf = SemanticFeature::to_anchor(a, starring);
        let view = s.select_feature(sf);
        assert!(!view.entities.is_empty());
        for re in &view.entities {
            assert!(sf.matches(&kg, re.entity), "result must star the actor");
        }
    }

    #[test]
    fn pivot_switches_domain() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let actor = kg.type_id("Actor").unwrap();
        let f = kg.type_extent(film)[0];
        s.click_entity(f);
        // pivot through the film's cast: feature <f, starring, x>
        let starring = kg.predicate("starring").unwrap();
        let sf = SemanticFeature {
            anchor: f,
            predicate: starring,
            direction: Direction::FromAnchor,
        };
        let view = s.pivot(sf);
        assert_eq!(
            view.query.sf.type_filter,
            Some(actor),
            "pivot lands in Actor"
        );
        for re in &view.entities {
            assert!(kg.has_type(re.entity, actor));
        }
    }

    #[test]
    fn lookup_fills_focus_without_changing_query() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        s.click_entity(f);
        let q_before = s.view().query.clone();
        let timeline_before = s.timeline().len();
        s.lookup(f);
        assert!(s.view().focus.is_some());
        assert_eq!(s.view().query, q_before);
        assert_eq!(s.timeline().len(), timeline_before);
        // but the path gained an entity node
        assert!(s.path().nodes().iter().any(|n| n.kind == NodeKind::Entity));
    }

    #[test]
    fn revisit_restores_query() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f0 = kg.type_extent(film)[0];
        let f1 = kg.type_extent(film)[1];
        s.click_entity(f0);
        let q0 = s.view().query.clone();
        s.click_entity(f1);
        assert_ne!(s.view().query, q0);
        s.apply(UserAction::RevisitQuery { index: 0 });
        assert_eq!(s.view().query, q0);
        // path has a revisit edge back to the first node
        assert!(s.path().edges().iter().any(|e| e.action == "revisit"));
    }

    #[test]
    fn remove_seed_reverts_results() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f0 = kg.type_extent(film)[0];
        s.click_entity(f0);
        s.apply(UserAction::RemoveSeed { entity: f0 });
        assert!(s.view().query.sf.seeds.is_empty());
        assert!(s.view().entities.is_empty());
    }

    #[test]
    fn clear_resets_everything_but_history() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        s.submit_keywords("film");
        s.apply(UserAction::ClearQuery);
        assert!(s.view().query.is_empty());
        assert!(s.view().entities.is_empty());
        assert!(s.timeline().len() >= 2, "history preserved");
    }

    #[test]
    fn feature_axis_covers_multiple_aspects() {
        // Fig. 3-e mixes predicates; the diversified y-axis must too.
        let kg = generate(&DatagenConfig::small());
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = *kg
            .type_extent(film)
            .iter()
            .max_by_key(|&&f| kg.degree(f))
            .unwrap();
        s.click_entity(f);
        let preds: std::collections::HashSet<_> = s
            .view()
            .features
            .iter()
            .map(|rf| rf.feature.predicate)
            .collect();
        assert!(
            preds.len() >= 3,
            "expected a multi-aspect feature axis, got {} predicates",
            preds.len()
        );
    }

    #[test]
    fn sharded_session_matches_single_session_rankings() {
        // the same clicks against a sharded backend must produce
        // bit-identical recommendation areas and heat maps
        let kg = session_kg();
        let sg = pivote_kg::ShardedGraph::from_graph(&kg, 3);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];

        let mut single = Session::with_defaults(&kg);
        let mut sharded = Session::sharded(&sg, SessionConfig::default());
        single.click_entity(f);
        sharded.click_entity(f);

        let (a, b) = (single.view(), sharded.view());
        assert_eq!(a.query, b.query, "query state (incl. auto type filter)");
        assert_eq!(a.entities.len(), b.entities.len());
        for (x, y) in a.entities.iter().zip(&b.entities) {
            assert_eq!(x.entity, y.entity);
            assert!((x.score - y.score).abs() == 0.0, "score not bit-identical");
        }
        assert_eq!(a.features.len(), b.features.len());
        for (x, y) in a.features.iter().zip(&b.features) {
            assert_eq!(x.feature, y.feature);
            assert!((x.score - y.score).abs() == 0.0);
        }
        assert_eq!(a.heatmap.levels, b.heatmap.levels, "heat-map levels");
        assert_eq!(a.heatmap.values, b.heatmap.values, "heat-map values");
        assert_eq!(
            single.timeline().iter().last().unwrap().summary,
            sharded.timeline().iter().last().unwrap().summary,
            "timeline summaries render identically"
        );

        // profiles assemble from home shards
        sharded.lookup(f);
        let profile = sharded.view().focus.as_ref().unwrap();
        assert_eq!(profile.label, kg.display_name(f));

        // keyword search merges per-shard hits scored against the global
        // corpus statistics — bit-identical to the single-graph engine
        for query in [kg.display_name(f), "the film".to_owned()] {
            let sh = sharded.search_hits(&query, 10);
            let si = single.search_hits(&query, 10);
            assert_eq!(sh.len(), si.len(), "hit count for {query:?}");
            for (x, y) in sh.iter().zip(&si) {
                assert_eq!(x.entity, y.entity, "hit order for {query:?}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "search score for {query:?} not bit-identical"
                );
            }
        }
    }

    #[test]
    fn sharded_search_is_bit_identical_at_every_shard_count() {
        let kg = session_kg();
        let single = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let label = kg.display_name(kg.type_extent(film)[0]);
        let queries = [label.as_str(), "the film", "american work"];
        for shards in 1..=4 {
            let sg = pivote_kg::ShardedGraph::from_graph(&kg, shards);
            let sharded = Session::sharded(&sg, SessionConfig::default());
            for query in queries {
                let sh = sharded.search_hits(query, 25);
                let si = single.search_hits(query, 25);
                assert_eq!(sh.len(), si.len(), "{shards} shards, {query:?}");
                for (x, y) in sh.iter().zip(&si) {
                    assert_eq!(x.entity, y.entity, "{shards} shards, {query:?}");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "{shards} shards, {query:?}: score drift"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_onto_sharded_backend_reproduces_rankings() {
        let kg = session_kg();
        let sg = pivote_kg::ShardedGraph::from_graph(&kg, 2);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let mut original = Session::with_defaults(&kg);
        original.click_entity(f);
        let replayed = crate::replay::replay_with_handle(
            &pivote_core::GraphHandle::sharded(&sg),
            SessionConfig::default(),
            original.action_log(),
        );
        assert_eq!(
            original
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>(),
            replayed
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>(),
            "single-backend session must replay identically on shards"
        );
    }

    #[test]
    fn state_export_import_roundtrip() {
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        s.click_entity(kg.type_extent(film)[0]);
        let json = s.export_json();
        let state: SessionState = serde_json::from_str(&json).unwrap();
        let mut s2 = Session::with_defaults(&kg);
        s2.restore_state(state.clone());
        assert_eq!(s2.view().query, s.view().query);
        assert_eq!(s2.timeline(), s.timeline());
        assert_eq!(s2.export_state(), state);
        // restored session recomputes the same recommendations
        assert_eq!(s2.view().entities.len(), s.view().entities.len());
    }

    #[test]
    fn full_scenario_investigate_then_pivot_builds_path() {
        // The Fig. 4 shape: search → investigate → pivot, with a lookup.
        let kg = session_kg();
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        s.submit_keywords(&kg.display_name(f));
        s.click_entity(f);
        s.lookup(f);
        let starring = kg.predicate("starring").unwrap();
        let sf = SemanticFeature {
            anchor: f,
            predicate: starring,
            direction: Direction::FromAnchor,
        };
        s.pivot(sf);
        let trail = s.path().query_trail();
        assert_eq!(trail.len(), 3, "search, investigate, pivot");
        let verbs: Vec<&str> = s.path().edges().iter().map(|e| e.action.as_str()).collect();
        assert!(verbs.contains(&"investigate"));
        assert!(verbs.contains(&"lookup"));
        assert!(verbs.contains(&"pivot"));
    }
}

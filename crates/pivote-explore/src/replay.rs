//! Action logs: record every user action of a session and replay it
//! against a fresh session — the mechanism behind reproducible demo
//! scenarios and the session statistics shown in the Fig. 4 "view".

use crate::events::UserAction;
use crate::session::Session;
use pivote_kg::KnowledgeGraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An append-only log of user actions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionLog {
    /// Actions in application order.
    pub actions: Vec<UserAction>,
}

impl ActionLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an action.
    pub fn push(&mut self, action: UserAction) {
        self.actions.push(action);
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("actions serialize")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Apply every action of `log` to `session` in order. Returns how many
/// actions were applied.
pub fn replay(session: &mut Session<'_>, log: &ActionLog) -> usize {
    for action in &log.actions {
        session.apply(action.clone());
    }
    log.actions.len()
}

/// Replay a log onto a *fresh* session that shares an existing
/// [`QueryContext`](pivote_core::QueryContext) — every `p(π|c)` density
/// the original session memoized is a cache hit during the replay, which
/// is what makes reproducing demo scenarios and "revisit historical
/// queries" cheap.
pub fn replay_with_context<'kg>(
    ctx: &std::sync::Arc<pivote_core::QueryContext<'kg>>,
    config: crate::session::SessionConfig,
    log: &ActionLog,
) -> Session<'kg> {
    let mut session = Session::with_context(std::sync::Arc::clone(ctx), config);
    replay(&mut session, log);
    session
}

/// [`replay_with_context`] over any backend handle — the mechanism that
/// lets a recorded session be reproduced against a sharded deployment of
/// the same graph (rankings replay bit-identically on both backends).
pub fn replay_with_handle<'kg>(
    handle: &pivote_core::GraphHandle<'kg>,
    config: crate::session::SessionConfig,
    log: &ActionLog,
) -> Session<'kg> {
    let mut session = Session::with_handle(handle.clone(), config);
    replay(&mut session, log);
    session
}

/// Replay a [`LiveLog`](crate::live::LiveLog) — user actions, store
/// appends **and compactions**, in their original order — onto a fresh
/// [`LiveSession`](crate::live::LiveSession) over `live`, whichever
/// layout it holds. Starting from the same base store this reproduces
/// the entire live exploration — growth and re-partitioning included —
/// with bit-identical rankings, heat maps and profiles: appends are
/// deterministic splices, compaction is an answer-preserving offline
/// rebuild, and actions are deterministic queries.
///
/// [`LiveEvent::Compact`](crate::live::LiveEvent::Compact) events are
/// the identity on a single-layout store (a single graph is always one
/// partition, and compaction changes no answer), so a log recorded
/// against a sharded deployment still replays to bit-identical rankings
/// on a single one — the live twin of [`replay_with_handle`]'s
/// single-vs-sharded guarantee.
pub fn replay_live<'g>(
    live: &'g pivote_core::LiveStore,
    config: crate::session::SessionConfig,
    log: &crate::live::LiveLog,
) -> crate::live::LiveSession<'g> {
    let mut session = crate::live::LiveSession::new(live, config);
    for event in &log.events {
        match event {
            crate::live::LiveEvent::Action(action) => {
                session.apply(action.clone());
            }
            crate::live::LiveEvent::Append(delta) => {
                session.append(delta).expect("replayed append applies");
            }
            crate::live::LiveEvent::Compact { target_shards } => {
                session
                    .compact(*target_shards)
                    .expect("replayed compaction applies");
            }
        }
    }
    session
}

/// Deprecated name of [`replay_live`] from before the single/sharded
/// live stacks were unified — the one replay path now handles both
/// layouts (and compaction events) itself.
#[deprecated(
    since = "0.5.0",
    note = "use replay_live — one replay path, both layouts"
)]
#[allow(deprecated)]
pub fn replay_live_sharded<'g>(
    live: &'g pivote_core::LiveStore,
    config: crate::session::SessionConfig,
    log: &crate::live::LiveLog,
) -> crate::live::LiveShardedSession<'g> {
    replay_live(live, config, log)
}

/// Aggregate statistics of an exploration session, computed from its
/// log and timeline — what the demo's path "view" summarizes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Actions per verb (search, investigate, pivot, …).
    pub actions_by_verb: BTreeMap<String, usize>,
    /// Number of distinct query states visited.
    pub query_states: usize,
    /// Type domains the session touched (via type filters), by name.
    pub domains_visited: Vec<String>,
    /// Number of entity lookups.
    pub lookups: usize,
}

/// Compute statistics for a session.
pub fn session_stats(kg: &KnowledgeGraph, session: &Session<'_>) -> SessionStats {
    let mut actions_by_verb: BTreeMap<String, usize> = BTreeMap::new();
    for action in &session.action_log().actions {
        *actions_by_verb.entry(action.verb().to_owned()).or_default() += 1;
    }
    let mut domains: Vec<String> = session
        .timeline()
        .iter()
        .filter_map(|entry| entry.query.sf.type_filter)
        .map(|t| kg.type_name(t).to_owned())
        .collect();
    domains.dedup();
    let lookups = actions_by_verb.get("lookup").copied().unwrap_or(0);
    SessionStats {
        actions_by_verb,
        query_states: session.timeline().len(),
        domains_visited: domains,
        lookups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_core::{Direction, SemanticFeature};
    use pivote_kg::{generate, DatagenConfig};

    fn scripted(kg: &KnowledgeGraph) -> Session<'_> {
        let mut s = Session::with_defaults(kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        s.submit_keywords(&kg.display_name(f));
        s.click_entity(f);
        s.lookup(f);
        let starring = kg.predicate("starring").unwrap();
        s.pivot(SemanticFeature {
            anchor: f,
            predicate: starring,
            direction: Direction::FromAnchor,
        });
        s
    }

    #[test]
    fn sessions_record_their_actions() {
        let kg = generate(&DatagenConfig::tiny());
        let s = scripted(&kg);
        assert_eq!(s.action_log().len(), 4);
        let verbs: Vec<&str> = s.action_log().actions.iter().map(|a| a.verb()).collect();
        assert_eq!(verbs, vec!["search", "investigate", "lookup", "pivot"]);
    }

    #[test]
    fn replay_reproduces_the_session() {
        let kg = generate(&DatagenConfig::tiny());
        let original = scripted(&kg);
        let log = original.action_log().clone();

        let mut fresh = Session::with_defaults(&kg);
        let applied = replay(&mut fresh, &log);
        assert_eq!(applied, 4);
        assert_eq!(fresh.view().query, original.view().query);
        assert_eq!(fresh.timeline(), original.timeline());
        assert_eq!(
            fresh
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_on_shared_context_reproduces_the_session() {
        let kg = generate(&DatagenConfig::tiny());
        let original = scripted(&kg);
        let replayed = super::replay_with_context(
            original.query_context(),
            crate::session::SessionConfig::default(),
            original.action_log(),
        );
        assert_eq!(replayed.view().query, original.view().query);
        assert_eq!(replayed.timeline(), original.timeline());
        assert_eq!(
            replayed
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>(),
            original
                .view()
                .entities
                .iter()
                .map(|re| re.entity)
                .collect::<Vec<_>>(),
            "shared-context replay must be bit-identical"
        );
    }

    #[test]
    fn replay_through_json_roundtrip() {
        let kg = generate(&DatagenConfig::tiny());
        let original = scripted(&kg);
        let json = original.action_log().to_json();
        let log = ActionLog::from_json(&json).unwrap();
        let mut fresh = Session::with_defaults(&kg);
        replay(&mut fresh, &log);
        assert_eq!(fresh.view().query, original.view().query);
    }

    #[test]
    fn stats_summarize_the_session() {
        let kg = generate(&DatagenConfig::tiny());
        let s = scripted(&kg);
        let stats = session_stats(&kg, &s);
        assert_eq!(stats.query_states, 3); // search, investigate, pivot
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.actions_by_verb.get("pivot"), Some(&1));
        assert!(stats.domains_visited.iter().any(|d| d == "Film"));
        assert!(stats.domains_visited.iter().any(|d| d == "Actor"));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(ActionLog::from_json("not json").is_err());
    }
}

//! # pivote-explore — the PivotE exploration session engine (paper §2.1, §3)
//!
//! The interaction state machine behind the PivotE interface. The paper's
//! web UI is reproduced as a library: every affordance of Fig. 3 is a
//! [`UserAction`], and [`Session::apply`] performs the paper's dynamic
//! query formulation, producing the recommendation areas, the heat map,
//! the timeline (Fig. 3-g) and the exploratory path (Fig. 4).
//!
//! ```
//! use pivote_explore::Session;
//! use pivote_kg::{generate, DatagenConfig};
//!
//! let kg = generate(&DatagenConfig::tiny());
//! let mut session = Session::with_defaults(&kg);
//! let film = kg.type_id("Film").unwrap();
//! let seed = kg.type_extent(film)[0];
//! let view = session.click_entity(seed);        // investigation
//! assert!(!view.features.is_empty());
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod live;
pub mod path;
pub mod profile;
pub mod query;
pub mod replay;
pub mod session;
pub mod timeline;

pub use events::UserAction;
#[allow(deprecated)]
pub use live::LiveShardedSession;
pub use live::{LiveEvent, LiveLog, LiveSearchCache, LiveSession, SearchWarmer};
pub use path::{ExplorationPath, NodeKind, PathEdge, PathNode};
pub use profile::{build_profile, EntityProfile};
pub use query::ExplorationQuery;
#[allow(deprecated)]
pub use replay::replay_live_sharded;
pub use replay::{
    replay, replay_live, replay_with_context, replay_with_handle, session_stats, ActionLog,
    SessionStats,
};
pub use session::{
    merge_corpus_stats, search_backend_hits, SearchBackend, Session, SessionConfig, SessionState,
    ViewState,
};
pub use timeline::{Timeline, TimelineEntry};

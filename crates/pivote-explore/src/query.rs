//! The exploration query: keywords plus the structured seed/feature
//! conditions, with the reformulation operations of the query area
//! (Fig. 3-b): addition, removal, duplication-safe insertion.

use pivote_core::{SemanticFeature, SfQuery};
use pivote_kg::{EntityId, KnowledgeGraph, TypeId};
use serde::{Deserialize, Serialize};

/// The full query state shown in the query area.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplorationQuery {
    /// Free-text keywords (Fig. 3-a), if any.
    pub keywords: Option<String>,
    /// Structured conditions: seeds, required features, type filter.
    pub sf: SfQuery,
}

impl ExplorationQuery {
    /// A keyword-only query.
    pub fn keywords(q: impl Into<String>) -> Self {
        Self {
            keywords: Some(q.into()),
            sf: SfQuery::default(),
        }
    }

    /// Whether nothing at all is specified.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_none() && self.sf.is_empty()
    }

    /// Add a seed if not already present. Returns whether it was added.
    pub fn add_seed(&mut self, e: EntityId) -> bool {
        if self.sf.seeds.contains(&e) {
            return false;
        }
        self.sf.seeds.push(e);
        true
    }

    /// Remove a seed. Returns whether it was present.
    pub fn remove_seed(&mut self, e: EntityId) -> bool {
        let before = self.sf.seeds.len();
        self.sf.seeds.retain(|&s| s != e);
        self.sf.seeds.len() != before
    }

    /// Add a required feature if not already present.
    pub fn add_feature(&mut self, sf: SemanticFeature) -> bool {
        if self.sf.required.contains(&sf) {
            return false;
        }
        self.sf.required.push(sf);
        true
    }

    /// Remove a required feature.
    pub fn remove_feature(&mut self, sf: SemanticFeature) -> bool {
        let before = self.sf.required.len();
        self.sf.required.retain(|&f| f != sf);
        self.sf.required.len() != before
    }

    /// Set or clear the type filter.
    pub fn set_type_filter(&mut self, t: Option<TypeId>) {
        self.sf.type_filter = t;
    }

    /// Human-readable one-line summary for the timeline.
    pub fn summary(&self, kg: &KnowledgeGraph) -> String {
        self.summary_impl(
            |e| kg.display_name(e),
            |sf| sf.display(kg),
            |t| kg.type_name(t).to_owned(),
        )
    }

    /// [`ExplorationQuery::summary`] over a backend-agnostic
    /// [`GraphHandle`] — identical output on single and sharded backends.
    pub fn summary_with(&self, handle: &pivote_core::GraphHandle<'_>) -> String {
        self.summary_impl(
            |e| handle.display_name(e),
            |sf| handle.feature_display(*sf),
            |t| handle.type_name(t).to_owned(),
        )
    }

    fn summary_impl(
        &self,
        display: impl Fn(EntityId) -> String,
        feat: impl Fn(&SemanticFeature) -> String,
        tname: impl Fn(TypeId) -> String,
    ) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(k) = &self.keywords {
            parts.push(format!("keywords: {k:?}"));
        }
        if !self.sf.seeds.is_empty() {
            let names: Vec<String> = self.sf.seeds.iter().map(|&e| display(e)).collect();
            parts.push(format!("seeds: {}", names.join(", ")));
        }
        if !self.sf.required.is_empty() {
            let feats: Vec<String> = self.sf.required.iter().map(feat).collect();
            parts.push(format!("features: {}", feats.join(", ")));
        }
        if let Some(t) = self.sf.type_filter {
            parts.push(format!("type: {}", tname(t)));
        }
        if parts.is_empty() {
            "(empty)".to_owned()
        } else {
            parts.join(" | ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::KgBuilder;

    #[test]
    fn add_remove_seed_is_duplicate_safe() {
        let mut q = ExplorationQuery::default();
        let e = EntityId::new(1);
        assert!(q.add_seed(e));
        assert!(!q.add_seed(e));
        assert_eq!(q.sf.seeds.len(), 1);
        assert!(q.remove_seed(e));
        assert!(!q.remove_seed(e));
        assert!(q.is_empty());
    }

    #[test]
    fn add_remove_feature() {
        let mut q = ExplorationQuery::default();
        let sf = SemanticFeature::to_anchor(EntityId::new(0), pivote_kg::PredicateId::new(0));
        assert!(q.add_feature(sf));
        assert!(!q.add_feature(sf));
        assert!(q.remove_feature(sf));
        assert!(q.is_empty());
    }

    #[test]
    fn summary_renders_all_parts() {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let hanks = b.entity("Tom_Hanks");
        let starring = b.predicate("starring");
        b.triple(gump, starring, hanks);
        let film = b.typed(gump, "Film");
        let kg = b.finish();

        let mut q = ExplorationQuery::keywords("tom hanks");
        q.add_seed(gump);
        q.add_feature(SemanticFeature::to_anchor(hanks, starring));
        q.set_type_filter(Some(film));
        let s = q.summary(&kg);
        assert!(s.contains("keywords"), "{s}");
        assert!(s.contains("Forrest Gump"), "{s}");
        assert!(s.contains("Tom_Hanks:starring"), "{s}");
        assert!(s.contains("type: Film"), "{s}");
        assert_eq!(ExplorationQuery::default().summary(&kg), "(empty)");
    }

    #[test]
    fn serde_roundtrip() {
        let mut q = ExplorationQuery::keywords("x");
        q.add_seed(EntityId::new(5));
        let json = serde_json::to_string(&q).unwrap();
        let back: ExplorationQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}

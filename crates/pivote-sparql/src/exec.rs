//! Basic-graph-pattern evaluation over a [`KnowledgeGraph`].
//!
//! A classic backtracking join: patterns are evaluated most-bound-first,
//! each binding extension enumerated straight from the store's indexes
//! (CSR adjacency, type/category extents, label table). The well-known
//! predicates `rdf:type`, `dct:subject` and `rdfs:label` are routed to
//! their dedicated indexes, mirroring how `pivote_kg::ntriples` loads
//! them.

use crate::ast::{SelectQuery, Term, TriplePattern};
use pivote_kg::{schema, EntityId, KnowledgeGraph, PredicateId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bound value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An entity.
    Entity(EntityId),
    /// A plain literal (lexical form).
    Literal(String),
}

impl Value {
    /// Render using graph names.
    pub fn display(&self, kg: &KnowledgeGraph) -> String {
        match self {
            Value::Entity(e) => kg.entity_name(*e).to_owned(),
            Value::Literal(l) => format!("{l:?}"),
        }
    }
}

/// Query results: projected variables and rows aligned with them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Variable names, in projection order.
    pub vars: Vec<String>,
    /// One row per solution; columns align with `vars`. A column is
    /// `None` when the projected variable does not occur in the pattern.
    pub rows: Vec<Vec<Option<Value>>>,
}

impl ResultSet {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a fixed-width text table.
    pub fn to_table(&self, kg: &KnowledgeGraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.vars.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Some(v) => v.display(kg),
                    None => "-".to_owned(),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }
}

type Bindings = HashMap<String, Value>;

/// Execute a parsed query against a graph.
pub fn execute(kg: &KnowledgeGraph, query: &SelectQuery) -> ResultSet {
    let projection = query.effective_projection();
    let mut rows: Vec<Vec<Option<Value>>> = Vec::new();
    let mut bindings: Bindings = HashMap::new();
    let mut remaining: Vec<&TriplePattern> = query.patterns.iter().collect();
    // Without DISTINCT we can stop as soon as LIMIT rows are found.
    let early_stop = if query.distinct {
        usize::MAX
    } else {
        query.limit.unwrap_or(usize::MAX)
    };
    solve(kg, &mut remaining, &mut bindings, &mut |b| {
        rows.push(
            projection
                .iter()
                .map(|v| b.get(v).cloned())
                .collect::<Vec<_>>(),
        );
        rows.len() < early_stop
    });
    if query.distinct {
        rows.sort();
        rows.dedup();
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    ResultSet {
        vars: projection,
        rows,
    }
}

/// Parse and execute in one step.
pub fn query(kg: &KnowledgeGraph, src: &str) -> Result<ResultSet, crate::parser::SparqlError> {
    let q = crate::parser::parse(src)?;
    Ok(execute(kg, &q))
}

/// Recursive backtracking join. `emit` returns `false` to stop early.
fn solve(
    kg: &KnowledgeGraph,
    remaining: &mut Vec<&TriplePattern>,
    bindings: &mut Bindings,
    emit: &mut dyn FnMut(&Bindings) -> bool,
) -> bool {
    if remaining.is_empty() {
        return emit(bindings);
    }
    // pick the most-bound pattern next (greedy selectivity heuristic)
    let (idx, _) = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| bound_score(p, bindings))
        .expect("non-empty remaining");
    let pattern = remaining.swap_remove(idx);
    // Materialize the extensions first: enumeration borrows the bindings
    // immutably, the recursion below mutates them.
    let mut extensions: Vec<Vec<(String, Value)>> = Vec::new();
    enumerate(kg, pattern, bindings, &mut |new_bindings| {
        extensions.push(new_bindings);
        true
    });
    let mut keep_going = true;
    for new_bindings in extensions {
        for (k, v) in &new_bindings {
            bindings.insert(k.clone(), v.clone());
        }
        keep_going = solve(kg, remaining, bindings, emit);
        for (k, _) in &new_bindings {
            bindings.remove(k);
        }
        if !keep_going {
            break;
        }
    }
    // restore for the caller's backtracking
    remaining.push(pattern);
    keep_going
}

fn bound_score(p: &TriplePattern, b: &Bindings) -> usize {
    let t = |term: &Term| match term {
        Term::Var(v) => usize::from(b.contains_key(v)),
        _ => 1,
    };
    t(&p.subject) * 4 + t(&p.predicate) * 2 + t(&p.object)
}

/// Resolve a term under current bindings.
enum Resolved {
    Entity(EntityId),
    Literal(String),
    Unbound(String),
    /// An IRI naming nothing in this graph — the pattern cannot match.
    NoMatch,
}

fn resolve_node(kg: &KnowledgeGraph, term: &Term, b: &Bindings) -> Resolved {
    match term {
        Term::Var(v) => match b.get(v) {
            Some(Value::Entity(e)) => Resolved::Entity(*e),
            Some(Value::Literal(l)) => Resolved::Literal(l.clone()),
            None => Resolved::Unbound(v.clone()),
        },
        Term::Iri(iri) => match kg.entity(schema::local_name(iri)) {
            Some(e) => Resolved::Entity(e),
            None => Resolved::NoMatch,
        },
        Term::Literal(l) => Resolved::Literal(l.clone()),
    }
}

/// Enumerate all extensions of `bindings` matching `pattern`, calling
/// `each` with the *newly bound* variables. `each` returns `false` to
/// stop enumeration.
fn enumerate(
    kg: &KnowledgeGraph,
    pattern: &TriplePattern,
    bindings: &Bindings,
    each: &mut dyn FnMut(Vec<(String, Value)>) -> bool,
) {
    match &pattern.predicate {
        Term::Iri(iri) if iri == schema::RDF_TYPE => {
            enumerate_type(kg, pattern, bindings, each);
        }
        Term::Iri(iri) if iri == schema::DCT_SUBJECT => {
            enumerate_category(kg, pattern, bindings, each);
        }
        Term::Iri(iri) if iri == schema::RDFS_LABEL => {
            enumerate_label(kg, pattern, bindings, each);
        }
        Term::Iri(iri) => {
            let Some(p) = kg.predicate(schema::local_name(iri)) else {
                return;
            };
            enumerate_edge(kg, pattern, Some(p), bindings, each);
        }
        Term::Var(_) => {
            enumerate_edge(kg, pattern, None, bindings, each);
        }
        Term::Literal(_) => {} // literal predicates never match
    }
}

/// `?s p ?o` over stored edges (entity and literal objects), with the
/// predicate either fixed or a variable to bind.
fn enumerate_edge(
    kg: &KnowledgeGraph,
    pattern: &TriplePattern,
    fixed_p: Option<PredicateId>,
    bindings: &Bindings,
    each: &mut dyn FnMut(Vec<(String, Value)>) -> bool,
) {
    let pred_var = pattern.predicate.as_var().map(str::to_owned);
    let subject = resolve_node(kg, &pattern.subject, bindings);
    let object = resolve_node(kg, &pattern.object, bindings);

    let visit = |s: EntityId,
                 p: PredicateId,
                 o: Value,
                 each: &mut dyn FnMut(Vec<(String, Value)>) -> bool|
     -> bool {
        let mut new_bindings: Vec<(String, Value)> = Vec::with_capacity(3);
        if let Resolved::Unbound(v) = resolve_node(kg, &pattern.subject, bindings) {
            new_bindings.push((v, Value::Entity(s)));
        }
        if let Some(pv) = &pred_var {
            if !bindings.contains_key(pv) {
                new_bindings.push((pv.clone(), Value::Literal(kg.predicate_name(p).to_owned())));
            } else {
                return true; // bound predicate vars over edges unsupported; skip
            }
        }
        if let Resolved::Unbound(v) = resolve_node(kg, &pattern.object, bindings) {
            new_bindings.push((v, o));
        }
        each(new_bindings)
    };

    match (&subject, &object) {
        (Resolved::NoMatch, _) | (_, Resolved::NoMatch) => {}
        // fully or partially bound subject
        (Resolved::Entity(s), _) => {
            let s = *s;
            for (p, o) in kg.out_edges(s) {
                if fixed_p.is_some_and(|fp| fp != p) {
                    continue;
                }
                if let Resolved::Entity(oe) = object {
                    if oe != o {
                        continue;
                    }
                }
                if matches!(object, Resolved::Literal(_)) {
                    continue;
                }
                if !visit(s, p, Value::Entity(o), each) {
                    return;
                }
            }
            for (p, lit) in kg.literals(s) {
                if fixed_p.is_some_and(|fp| fp != p) {
                    continue;
                }
                match &object {
                    Resolved::Literal(want) if *want != lit.lexical => continue,
                    Resolved::Entity(_) => continue,
                    _ => {}
                }
                if !visit(s, p, Value::Literal(lit.lexical.clone()), each) {
                    return;
                }
            }
        }
        // object entity bound, subject free: walk incoming edges
        (Resolved::Unbound(_), Resolved::Entity(o)) => {
            let o = *o;
            for (p, s) in kg.in_edges(o) {
                if fixed_p.is_some_and(|fp| fp != p) {
                    continue;
                }
                if !visit(s, p, Value::Entity(o), each) {
                    return;
                }
            }
        }
        // object literal bound, subject free: scan literal statements
        (Resolved::Unbound(_), Resolved::Literal(want)) => {
            for (s, p, lit) in kg.literal_triples() {
                if fixed_p.is_some_and(|fp| fp != p) {
                    continue;
                }
                if lit.lexical != *want {
                    continue;
                }
                if !visit(s, p, Value::Literal(lit.lexical.clone()), each) {
                    return;
                }
            }
        }
        // both free: full scan
        (Resolved::Unbound(_), Resolved::Unbound(_)) => {
            for s in kg.entity_ids() {
                for (p, o) in kg.out_edges(s) {
                    if fixed_p.is_some_and(|fp| fp != p) {
                        continue;
                    }
                    if !visit(s, p, Value::Entity(o), each) {
                        return;
                    }
                }
                for (p, lit) in kg.literals(s) {
                    if fixed_p.is_some_and(|fp| fp != p) {
                        continue;
                    }
                    if !visit(s, p, Value::Literal(lit.lexical.clone()), each) {
                        return;
                    }
                }
            }
        }
        (Resolved::Literal(_), _) => {} // literal subjects never match
    }
}

fn enumerate_type(
    kg: &KnowledgeGraph,
    pattern: &TriplePattern,
    bindings: &Bindings,
    each: &mut dyn FnMut(Vec<(String, Value)>) -> bool,
) {
    let subject = resolve_node(kg, &pattern.subject, bindings);
    match (&subject, &pattern.object) {
        (Resolved::NoMatch, _) => {}
        (Resolved::Entity(s), Term::Iri(type_iri)) => {
            if let Some(t) = kg.type_id(schema::local_name(type_iri)) {
                if kg.has_type(*s, t) {
                    each(Vec::new());
                }
            }
        }
        (Resolved::Entity(s), Term::Var(v)) => {
            if bindings.contains_key(v) {
                return; // type values bind as entity-less names; no rebind
            }
            for t in kg.types_of(*s) {
                if !each(vec![(
                    v.clone(),
                    Value::Literal(kg.type_name(t).to_owned()),
                )]) {
                    return;
                }
            }
        }
        (Resolved::Unbound(sv), Term::Iri(type_iri)) => {
            if let Some(t) = kg.type_id(schema::local_name(type_iri)) {
                for &e in kg.type_extent(t) {
                    if !each(vec![(sv.clone(), Value::Entity(e))]) {
                        return;
                    }
                }
            }
        }
        (Resolved::Unbound(sv), Term::Var(tv)) => {
            for t in kg.type_ids() {
                for &e in kg.type_extent(t) {
                    if !each(vec![
                        (sv.clone(), Value::Entity(e)),
                        (tv.clone(), Value::Literal(kg.type_name(t).to_owned())),
                    ]) {
                        return;
                    }
                }
            }
        }
        _ => {}
    }
}

fn enumerate_category(
    kg: &KnowledgeGraph,
    pattern: &TriplePattern,
    bindings: &Bindings,
    each: &mut dyn FnMut(Vec<(String, Value)>) -> bool,
) {
    let subject = resolve_node(kg, &pattern.subject, bindings);
    let cat_of_iri = |iri: &str| kg.category_id(&schema::category_name(iri).replace('_', " "));
    match (&subject, &pattern.object) {
        (Resolved::NoMatch, _) => {}
        (Resolved::Entity(s), Term::Iri(iri)) => {
            if let Some(c) = cat_of_iri(iri) {
                if kg.has_category(*s, c) {
                    each(Vec::new());
                }
            }
        }
        (Resolved::Entity(s), Term::Var(v)) => {
            if bindings.contains_key(v) {
                return;
            }
            for c in kg.categories_of(*s) {
                if !each(vec![(
                    v.clone(),
                    Value::Literal(kg.category_name(c).to_owned()),
                )]) {
                    return;
                }
            }
        }
        (Resolved::Unbound(sv), Term::Iri(iri)) => {
            if let Some(c) = cat_of_iri(iri) {
                for &e in kg.category_extent(c) {
                    if !each(vec![(sv.clone(), Value::Entity(e))]) {
                        return;
                    }
                }
            }
        }
        _ => {}
    }
}

fn enumerate_label(
    kg: &KnowledgeGraph,
    pattern: &TriplePattern,
    bindings: &Bindings,
    each: &mut dyn FnMut(Vec<(String, Value)>) -> bool,
) {
    let subject = resolve_node(kg, &pattern.subject, bindings);
    match (&subject, &pattern.object) {
        (Resolved::NoMatch, _) => {}
        (Resolved::Entity(s), Term::Literal(want)) if kg.label(*s) == Some(want.as_str()) => {
            each(Vec::new());
        }
        (Resolved::Entity(s), Term::Var(v)) => {
            if bindings.contains_key(v) {
                return;
            }
            if let Some(l) = kg.label(*s) {
                each(vec![(v.clone(), Value::Literal(l.to_owned()))]);
            }
        }
        (Resolved::Unbound(sv), Term::Literal(want)) => {
            for e in kg.entity_ids() {
                if kg.label(e) == Some(want.as_str()) && !each(vec![(sv.clone(), Value::Entity(e))])
                {
                    return;
                }
            }
        }
        (Resolved::Unbound(sv), Term::Var(v)) => {
            for e in kg.entity_ids() {
                if let Some(l) = kg.label(e) {
                    if !each(vec![
                        (sv.clone(), Value::Entity(e)),
                        (v.clone(), Value::Literal(l.to_owned())),
                    ]) {
                        return;
                    }
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{KgBuilder, Literal};

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13");
        let green = b.entity("Green_Mile");
        let hanks = b.entity("Tom_Hanks");
        let sinise = b.entity("Gary_Sinise");
        let zemeckis = b.entity("Robert_Zemeckis");
        let starring = b.predicate("starring");
        let director = b.predicate("director");
        b.label(gump, "Forrest Gump");
        b.label(hanks, "Tom Hanks");
        b.triple(gump, starring, hanks);
        b.triple(gump, starring, sinise);
        b.triple(apollo, starring, hanks);
        b.triple(apollo, starring, sinise);
        b.triple(green, starring, hanks);
        b.triple(gump, director, zemeckis);
        for f in [gump, apollo, green] {
            b.typed(f, "Film");
            b.categorized(f, "American films");
        }
        b.typed(hanks, "Actor");
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::integer(142));
        b.finish()
    }

    fn names(kg: &KnowledgeGraph, rs: &ResultSet, var: usize) -> Vec<String> {
        rs.rows
            .iter()
            .filter_map(|row| row[var].as_ref())
            .map(|v| match v {
                Value::Entity(e) => kg.entity_name(*e).to_owned(),
                Value::Literal(l) => l.clone(),
            })
            .collect()
    }

    #[test]
    fn films_starring_tom_hanks() {
        let kg = kg();
        let rs = query(
            &kg,
            "SELECT ?film WHERE { ?film dbo:starring dbr:Tom_Hanks }",
        )
        .unwrap();
        let mut got = names(&kg, &rs, 0);
        got.sort();
        assert_eq!(got, vec!["Apollo_13", "Forrest_Gump", "Green_Mile"]);
    }

    #[test]
    fn join_two_patterns() {
        let kg = kg();
        // films starring both Hanks and Sinise
        let rs = query(
            &kg,
            "SELECT DISTINCT ?f WHERE { ?f dbo:starring dbr:Tom_Hanks . ?f dbo:starring dbr:Gary_Sinise }",
        )
        .unwrap();
        let mut got = names(&kg, &rs, 0);
        got.sort();
        assert_eq!(got, vec!["Apollo_13", "Forrest_Gump"]);
    }

    #[test]
    fn type_pattern_with_a_keyword() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?f WHERE { ?f a dbo:Film }").unwrap();
        assert_eq!(rs.len(), 3);
        // bound-subject check
        let rs = query(&kg, "SELECT * WHERE { dbr:Tom_Hanks a dbo:Actor }").unwrap();
        assert_eq!(rs.len(), 1, "fully bound type check should yield one row");
        let rs = query(&kg, "SELECT * WHERE { dbr:Tom_Hanks a dbo:Film }").unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn category_pattern() {
        let kg = kg();
        let rs = query(
            &kg,
            "SELECT ?f WHERE { ?f dct:subject dbr:Category:American_films }",
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn label_lookup_both_directions() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?e WHERE { ?e rdfs:label \"Forrest Gump\" }").unwrap();
        assert_eq!(names(&kg, &rs, 0), vec!["Forrest_Gump"]);
        let rs = query(&kg, "SELECT ?l WHERE { dbr:Tom_Hanks rdfs:label ?l }").unwrap();
        assert_eq!(names(&kg, &rs, 0), vec!["Tom Hanks"]);
    }

    #[test]
    fn literal_object_pattern() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?f WHERE { ?f dbo:runtime \"142\" }").unwrap();
        assert_eq!(names(&kg, &rs, 0), vec!["Forrest_Gump"]);
    }

    #[test]
    fn variable_predicate_enumerates_edges() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?p ?o WHERE { dbr:Forrest_Gump ?p ?o }").unwrap();
        // 3 entity edges + 1 literal edge
        assert_eq!(rs.len(), 4);
        let preds = names(&kg, &rs, 0);
        assert!(preds.contains(&"starring".to_owned()));
        assert!(preds.contains(&"runtime".to_owned()));
    }

    #[test]
    fn limit_and_distinct() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?f WHERE { ?f dbo:starring ?a } LIMIT 2").unwrap();
        assert_eq!(rs.len(), 2);
        // without distinct, Gump appears twice (two actors)
        let rs = query(&kg, "SELECT ?f WHERE { ?f dbo:starring ?a }").unwrap();
        assert_eq!(rs.len(), 5);
        let rs = query(&kg, "SELECT DISTINCT ?f WHERE { ?f dbo:starring ?a }").unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn unknown_entities_and_predicates_yield_empty() {
        let kg = kg();
        for q in [
            "SELECT ?f WHERE { ?f dbo:starring dbr:Nobody }",
            "SELECT ?f WHERE { ?f dbo:nonexistent ?x }",
            "SELECT ?f WHERE { ?f a dbo:Spaceship }",
        ] {
            assert!(query(&kg, q).unwrap().is_empty(), "{q}");
        }
    }

    #[test]
    fn three_way_join_with_projection_order() {
        let kg = kg();
        let rs = query(
            &kg,
            "SELECT ?d ?a WHERE { ?f dbo:director ?d . ?f dbo:starring ?a . ?f a dbo:Film }",
        )
        .unwrap();
        assert_eq!(rs.vars, vec!["d", "a"]);
        assert_eq!(rs.len(), 2); // Gump only: (Zemeckis, Hanks), (Zemeckis, Sinise)
        assert!(names(&kg, &rs, 0).iter().all(|d| d == "Robert_Zemeckis"));
    }

    #[test]
    fn result_table_renders() {
        let kg = kg();
        let rs = query(&kg, "SELECT ?l WHERE { dbr:Forrest_Gump rdfs:label ?l }").unwrap();
        let table = rs.to_table(&kg);
        assert!(table.starts_with("l\n"));
        assert!(table.contains("Forrest Gump"));
    }
}

//! # pivote-sparql — the structured-access baseline
//!
//! The paper's introduction motivates PivotE by the difficulty of
//! accessing knowledge graphs "in a structured manner like SPARQL": a
//! user must already know the schema to write the query that exploratory
//! search discovers by clicking. This crate implements the SPARQL
//! subset needed to make that comparison concrete — `SELECT [DISTINCT]
//! … WHERE { basic graph pattern } [LIMIT n]` with prefixed names,
//! `a`/`rdf:type`, `dct:subject` (categories) and `rdfs:label` routed to
//! the store's dedicated indexes.
//!
//! ```
//! use pivote_kg::{generate, DatagenConfig};
//!
//! let kg = generate(&DatagenConfig::tiny());
//! // "Find films" the structured way:
//! let rs = pivote_sparql::query(&kg, "SELECT ?f WHERE { ?f a dbo:Film } LIMIT 5").unwrap();
//! assert!(!rs.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;

pub use ast::{SelectQuery, Term, TriplePattern};
pub use exec::{execute, query, ResultSet, Value};
pub use parser::{parse, SparqlError};

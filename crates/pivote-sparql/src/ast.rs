//! Abstract syntax of the supported SPARQL subset:
//!
//! ```sparql
//! PREFIX dbo: <http://dbpedia.org/ontology/>
//! SELECT DISTINCT ?film ?director WHERE {
//!   ?film dbo:starring dbr:Tom_Hanks .
//!   ?film dbo:director ?director .
//!   ?film rdf:type dbo:Film .
//! } LIMIT 10
//! ```
//!
//! Basic graph patterns over IRIs, variables and plain literals, with
//! `DISTINCT` and `LIMIT`. No OPTIONAL/FILTER/UNION — the subset is the
//! structured-access baseline the paper's introduction contrasts
//! exploratory search against, not a full SPARQL implementation.

use serde::{Deserialize, Serialize};

/// A term of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// `?name`.
    Var(String),
    /// `<http://...>` or a resolved prefixed name — stored as the full
    /// IRI.
    Iri(String),
    /// `"plain literal"`.
    Literal(String),
}

impl Term {
    /// The variable name if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// One `s p o .` pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriplePattern {
    /// Subject term.
    pub subject: Term,
    /// Predicate term.
    pub predicate: Term,
    /// Object term.
    pub object: Term,
}

impl TriplePattern {
    /// Variables mentioned by this pattern.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(Term::as_var)
    }
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// Projected variable names, in order; empty means `SELECT *`.
    pub projection: Vec<String>,
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// The basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// `LIMIT`, if given.
    pub limit: Option<usize>,
}

impl SelectQuery {
    /// All variables appearing anywhere in the pattern, deduplicated in
    /// first-appearance order.
    pub fn pattern_vars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.patterns {
            for v in p.vars() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_owned());
                }
            }
        }
        out
    }

    /// The effective projection: the explicit list, or all pattern
    /// variables for `SELECT *`.
    pub fn effective_projection(&self) -> Vec<String> {
        if self.projection.is_empty() {
            self.pattern_vars()
        } else {
            self.projection.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_vars_dedup_in_order() {
        let q = SelectQuery {
            projection: vec![],
            distinct: false,
            patterns: vec![
                TriplePattern {
                    subject: Term::Var("film".into()),
                    predicate: Term::Iri("p".into()),
                    object: Term::Var("actor".into()),
                },
                TriplePattern {
                    subject: Term::Var("film".into()),
                    predicate: Term::Var("rel".into()),
                    object: Term::Literal("x".into()),
                },
            ],
            limit: None,
        };
        assert_eq!(q.pattern_vars(), vec!["film", "actor", "rel"]);
        assert_eq!(q.effective_projection(), vec!["film", "actor", "rel"]);
    }

    #[test]
    fn term_as_var() {
        assert_eq!(Term::Var("x".into()).as_var(), Some("x"));
        assert_eq!(Term::Iri("i".into()).as_var(), None);
        assert_eq!(Term::Literal("l".into()).as_var(), None);
    }
}

//! Hand-rolled parser for the SPARQL subset (see [`crate::ast`]).
//!
//! Supports `PREFIX` declarations, full IRIs in angle brackets, prefixed
//! names (`dbo:starring`), variables (`?x`), plain string literals,
//! `SELECT [DISTINCT] (?v… | *) WHERE { patterns }` and `LIMIT n`.
//! The well-known `a` keyword abbreviates `rdf:type`.

use crate::ast::{SelectQuery, Term, TriplePattern};
use std::collections::HashMap;

/// Parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlError {
    /// Byte offset into the query string.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPARQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SparqlError {}

const RDF_TYPE_IRI: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Keyword(String), // uppercased
    Var(String),
    Iri(String),
    Prefixed(String, String),
    Literal(String),
    Number(usize),
    LBrace,
    RBrace,
    Dot,
    Star,
    A,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        SparqlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(usize, Token)>, SparqlError> {
        self.skip_ws();
        let start = self.pos;
        let rest = self.rest();
        let mut chars = rest.chars();
        let Some(c) = chars.next() else {
            return Ok(None);
        };
        let token = match c {
            '{' => {
                self.pos += 1;
                Token::LBrace
            }
            '}' => {
                self.pos += 1;
                Token::RBrace
            }
            '.' => {
                self.pos += 1;
                Token::Dot
            }
            '*' => {
                self.pos += 1;
                Token::Star
            }
            '?' | '$' => {
                let name: String = chars
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.is_empty() {
                    return Err(self.error("empty variable name"));
                }
                self.pos += 1 + name.len();
                Token::Var(name)
            }
            '<' => {
                let end = rest
                    .find('>')
                    .ok_or_else(|| self.error("unterminated IRI"))?;
                let iri = rest[1..end].to_owned();
                self.pos += end + 1;
                Token::Iri(iri)
            }
            '"' => {
                let body = &rest[1..];
                let end = body
                    .find('"')
                    .ok_or_else(|| self.error("unterminated literal"))?;
                let lit = body[..end].to_owned();
                self.pos += end + 2;
                Token::Literal(lit)
            }
            c if c.is_ascii_digit() => {
                let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                self.pos += digits.len();
                Token::Number(digits.parse().map_err(|_| self.error("bad number"))?)
            }
            c if c.is_alphabetic() || c == '_' => {
                let word: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                self.pos += word.len();
                // prefixed name?
                if self.rest().starts_with(':') {
                    self.pos += 1;
                    // ':' is allowed inside the local part so DBpedia
                    // `Category:Name` resources work as prefixed names.
                    let local: String = self
                        .rest()
                        .chars()
                        .take_while(|c| {
                            c.is_alphanumeric()
                                || matches!(*c, '_' | '-' | '(' | ')' | ',' | '\'' | ':')
                        })
                        .collect();
                    self.pos += local.len();
                    Token::Prefixed(word, local)
                } else if word == "a" {
                    Token::A
                } else {
                    Token::Keyword(word.to_uppercase())
                }
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(Some((start, token)))
    }
}

/// Parse a query string into a [`SelectQuery`].
pub fn parse(src: &str) -> Result<SelectQuery, SparqlError> {
    let mut lexer = Lexer::new(src);
    let mut tokens: Vec<(usize, Token)> = Vec::new();
    while let Some(t) = lexer.next_token()? {
        tokens.push(t);
    }
    Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    }
    .parse_query()
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(o, _)| *o)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        SparqlError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn parse_query(&mut self) -> Result<SelectQuery, SparqlError> {
        // PREFIX declarations
        while matches!(self.peek(), Some(Token::Keyword(k)) if k == "PREFIX") {
            self.next();
            let name = match self.next() {
                // `dbo:` lexes as Prefixed("dbo", "") when followed by space
                Some(Token::Prefixed(p, local)) if local.is_empty() => p,
                other => return Err(self.error(format!("expected prefix name, found {other:?}"))),
            };
            let iri = match self.next() {
                Some(Token::Iri(iri)) => iri,
                other => return Err(self.error(format!("expected IRI, found {other:?}"))),
            };
            self.prefixes.insert(name, iri);
        }
        // built-in prefixes for convenience
        for (name, iri) in [
            ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
            ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
            ("dbo", "http://dbpedia.org/ontology/"),
            ("dbr", "http://dbpedia.org/resource/"),
            ("dct", "http://purl.org/dc/terms/"),
        ] {
            self.prefixes
                .entry(name.to_owned())
                .or_insert_with(|| iri.to_owned());
        }

        self.expect_keyword("SELECT")?;
        let mut distinct = false;
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == "DISTINCT") {
            self.next();
            distinct = true;
        }
        let mut projection = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(v)) = self.next() {
                        projection.push(v);
                    }
                }
                Some(Token::Star) => {
                    self.next();
                    break;
                }
                Some(Token::Keyword(k)) if k == "WHERE" => break,
                other => {
                    return Err(self.error(format!("expected ?var, * or WHERE, found {other:?}")))
                }
            }
        }
        self.expect_keyword("WHERE")?;
        match self.next() {
            Some(Token::LBrace) => {}
            other => return Err(self.error(format!("expected '{{', found {other:?}"))),
        }
        let mut patterns = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::RBrace)) {
                self.next();
                break;
            }
            let subject = self.parse_term()?;
            let predicate = self.parse_term()?;
            let object = self.parse_term()?;
            patterns.push(TriplePattern {
                subject,
                predicate,
                object,
            });
            match self.peek() {
                Some(Token::Dot) => {
                    self.next();
                }
                Some(Token::RBrace) => {}
                other => return Err(self.error(format!("expected '.' or '}}', found {other:?}"))),
            }
        }
        if patterns.is_empty() {
            return Err(self.error("empty graph pattern"));
        }
        let mut limit = None;
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == "LIMIT") {
            self.next();
            match self.next() {
                Some(Token::Number(n)) => limit = Some(n),
                other => {
                    return Err(self.error(format!("expected number after LIMIT, found {other:?}")))
                }
            }
        }
        if self.peek().is_some() {
            return Err(self.error("trailing tokens after query"));
        }
        Ok(SelectQuery {
            projection,
            distinct,
            patterns,
            limit,
        })
    }

    fn parse_term(&mut self) -> Result<Term, SparqlError> {
        match self.next() {
            Some(Token::Var(v)) => Ok(Term::Var(v)),
            Some(Token::Iri(iri)) => Ok(Term::Iri(iri)),
            Some(Token::Prefixed(p, local)) => {
                let base = self
                    .prefixes
                    .get(&p)
                    .ok_or_else(|| self.error(format!("unknown prefix {p:?}")))?;
                Ok(Term::Iri(format!("{base}{local}")))
            }
            Some(Token::Literal(l)) => Ok(Term::Literal(l)),
            Some(Token::A) => Ok(Term::Iri(RDF_TYPE_IRI.to_owned())),
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_style_query() {
        let q = parse(
            r#"
            PREFIX dbo: <http://dbpedia.org/ontology/>
            PREFIX dbr: <http://dbpedia.org/resource/>
            SELECT DISTINCT ?film WHERE {
              ?film dbo:starring dbr:Tom_Hanks .
              ?film a dbo:Film .
            } LIMIT 10
            "#,
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.projection, vec!["film"]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(
            q.patterns[0].object,
            Term::Iri("http://dbpedia.org/resource/Tom_Hanks".into())
        );
        assert_eq!(q.patterns[1].predicate, Term::Iri(RDF_TYPE_IRI.into()));
    }

    #[test]
    fn select_star_and_multi_patterns() {
        let q = parse("SELECT * WHERE { ?f dbo:starring ?a . ?f dbo:director ?d }").unwrap();
        assert!(q.projection.is_empty());
        assert_eq!(q.effective_projection(), vec!["f", "a", "d"]);
    }

    #[test]
    fn literal_objects_and_comments() {
        let q =
            parse("# find by label\nSELECT ?e WHERE { ?e rdfs:label \"Forrest Gump\" . }").unwrap();
        assert_eq!(q.patterns[0].object, Term::Literal("Forrest Gump".into()));
    }

    #[test]
    fn parenthesised_local_names() {
        let q = parse("SELECT ?x WHERE { ?x dbo:starring dbr:Apollo_13_(film) }").unwrap();
        assert_eq!(
            q.patterns[0].object,
            Term::Iri("http://dbpedia.org/resource/Apollo_13_(film)".into())
        );
    }

    #[test]
    fn errors_are_reported() {
        for (src, needle) in [
            ("SELECT ?x { ?x ?p ?o }", "WHERE"),
            ("SELECT ?x WHERE { }", "empty"),
            ("SELECT ?x WHERE { ?x unknown:p ?o }", "unknown prefix"),
            ("SELECT ?x WHERE { ?x <open ?o }", "unterminated IRI"),
            (
                "SELECT ?x WHERE { ?x dbo:p \"open }",
                "unterminated literal",
            ),
            ("SELECT ?x WHERE { ?x dbo:p ?o } LIMIT ?x", "number"),
            ("SELECT ?x WHERE { ?x dbo:p ?o } garbage", "trailing"),
        ] {
            let err = parse(src).expect_err(src);
            assert!(
                err.message.to_lowercase().contains(&needle.to_lowercase()),
                "{src}: {err}"
            );
        }
    }

    #[test]
    fn empty_pattern_is_an_error() {
        assert!(parse("SELECT ?x WHERE { }").is_err());
    }
}

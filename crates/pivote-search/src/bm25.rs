//! BM25F-style scorer — the keyword-search baseline PivotE is compared
//! against (the "traditional search systems" of §4, e.g. Pilot's
//! keyword entity search).
//!
//! Term frequencies from the five fields are combined with field weights
//! into a pseudo-frequency, then scored with the usual BM25 saturation
//! and a cross-field IDF.

use crate::corpus::CollectionView;
use crate::fields::Field;
use crate::index::FieldedIndex;
use crate::lm::FieldWeights;

/// BM25F parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength in `[0, 1]`.
    pub b: f64,
    /// Field weights (same shape as the LM mixture weights).
    pub weights: FieldWeights,
}

impl Default for Bm25 {
    fn default() -> Self {
        Self {
            k1: 1.2,
            b: 0.75,
            weights: FieldWeights::default(),
        }
    }
}

impl Bm25 {
    /// BM25F score of `doc` for the analyzed query `terms`.
    pub fn score(&self, index: &FieldedIndex, doc: u32, terms: &[String]) -> f64 {
        self.score_in(index, index, doc, terms)
    }

    /// Like [`Bm25::score`], but the collection-level inputs (document
    /// count, document frequencies, average field lengths) come from an
    /// explicit [`CollectionView`] — the sharded path scores every shard
    /// against the globally-merged statistics. A term absent from the
    /// local shard but present elsewhere in the collection still
    /// contributes its global document frequency, exactly as it does in
    /// the single index. With `collection = index` this is exactly
    /// [`Bm25::score`].
    pub fn score_in<C: CollectionView + ?Sized>(
        &self,
        index: &FieldedIndex,
        collection: &C,
        doc: u32,
        terms: &[String],
    ) -> f64 {
        let n = collection.n_docs() as f64;
        let mut score = 0.0;
        for term in terms {
            // pseudo term frequency: field-weighted, length-normalized
            let mut pseudo_tf = 0.0;
            let mut df_union = 0usize;
            for field in Field::ALL {
                let w = self.weights.0[field.index()];
                if w == 0.0 {
                    continue;
                }
                let Some(df) = collection.df(field, term) else {
                    continue;
                };
                df_union = df_union.max(df);
                let fi = index.field(field);
                let tf = fi
                    .posting(term)
                    .map(|p| f64::from(p.tf(doc)))
                    .unwrap_or(0.0);
                if tf == 0.0 {
                    continue;
                }
                let avg = collection.avg_len(field).max(1e-9);
                let norm = 1.0 - self.b + self.b * f64::from(fi.doc_len(doc)) / avg;
                pseudo_tf += w * tf / norm;
            }
            if pseudo_tf == 0.0 {
                continue;
            }
            let idf = ((n - df_union as f64 + 0.5) / (df_union as f64 + 0.5) + 1.0).ln();
            score += idf * pseudo_tf / (self.k1 + pseudo_tf);
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::KgBuilder;
    use pivote_text::Analyzer;

    fn index() -> (pivote_kg::KnowledgeGraph, FieldedIndex) {
        let mut b = KgBuilder::new();
        let a = b.entity("Alpha_Film");
        let c = b.entity("Beta_Film");
        let d = b.entity("Unrelated");
        b.label(a, "Alpha Film");
        b.label(c, "Beta Film");
        b.label(d, "Unrelated Thing");
        let kg = b.finish();
        let idx = FieldedIndex::build(&kg, &Analyzer::default(), 16);
        (kg, idx)
    }

    #[test]
    fn matching_doc_outscores_nonmatching() {
        let (kg, idx) = index();
        let bm = Bm25::default();
        let terms = vec!["alpha".to_owned()];
        let a = kg.entity("Alpha_Film").unwrap().raw();
        let d = kg.entity("Unrelated").unwrap().raw();
        assert!(bm.score(&idx, a, &terms) > bm.score(&idx, d, &terms));
        assert_eq!(bm.score(&idx, d, &terms), 0.0);
    }

    #[test]
    fn more_matched_terms_score_higher() {
        let (kg, idx) = index();
        let bm = Bm25::default();
        let a = kg.entity("Alpha_Film").unwrap().raw();
        let one = bm.score(&idx, a, &[s("alpha")]);
        let two = bm.score(&idx, a, &[s("alpha"), s("film")]);
        assert!(two > one);
    }

    #[test]
    fn rare_term_has_higher_idf_weight() {
        let (kg, idx) = index();
        let bm = Bm25::default();
        let a = kg.entity("Alpha_Film").unwrap().raw();
        // "alpha" appears once in the collection, "film" twice.
        let rare = bm.score(&idx, a, &[s("alpha")]);
        let common = bm.score(&idx, a, &[s("film")]);
        assert!(rare > common);
    }

    fn s(v: &str) -> String {
        v.to_owned()
    }
}

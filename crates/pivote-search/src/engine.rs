//! The search engine facade: build the index once, answer top-k keyword
//! queries with either the mixture-of-LM model (the paper's engine) or
//! the BM25F baseline.

use crate::bm25::Bm25;
use crate::corpus::CollectionView;
use crate::fields::FiveFieldRepr;
use crate::index::FieldedIndex;
use crate::lm::MixtureLm;
use pivote_kg::{EntityId, KnowledgeGraph};
use pivote_text::Analyzer;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Analysis chain shared by indexer and queries.
    pub analyzer: Analyzer,
    /// Cap on the related-names field per entity.
    pub max_related: usize,
    /// The paper's retrieval model.
    pub lm: MixtureLm,
    /// The baseline scorer.
    pub bm25: Bm25,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            analyzer: Analyzer::default(),
            max_related: 128,
            lm: MixtureLm::default(),
            bm25: Bm25::default(),
        }
    }
}

/// Which scorer [`SearchEngine::search_with`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scorer {
    /// Mixture of per-field language models (paper §2.2).
    MixtureLm,
    /// BM25F baseline.
    Bm25,
}

/// One retrieved entity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// The entity.
    pub entity: EntityId,
    /// Model score (higher is better; LM scores are negative
    /// log-likelihoods summed over terms, comparable within one query).
    pub score: f64,
}

/// A built search engine over one knowledge graph.
pub struct SearchEngine {
    index: FieldedIndex,
    config: SearchConfig,
}

impl SearchEngine {
    /// Index `kg` and return a ready engine.
    pub fn build(kg: &KnowledgeGraph, config: SearchConfig) -> Self {
        let index = FieldedIndex::build(kg, &config.analyzer, config.max_related);
        Self { index, config }
    }

    /// Index `kg` selecting capped related-names neighbours in
    /// `(predicate, key)` order — shard-local engines pass their
    /// local→global id map so the indexed documents are bit-identical to
    /// the single-graph ones (see [`FieldedIndex::build_keyed`]).
    pub fn build_keyed(
        kg: &KnowledgeGraph,
        config: SearchConfig,
        key: impl Fn(EntityId) -> u32 + Copy,
    ) -> Self {
        let index = FieldedIndex::build_keyed(kg, &config.analyzer, config.max_related, key);
        Self { index, config }
    }

    /// Index with default configuration.
    pub fn with_defaults(kg: &KnowledgeGraph) -> Self {
        Self::build(kg, SearchConfig::default())
    }

    /// The underlying fielded index (for baselines and diagnostics).
    pub fn index(&self) -> &FieldedIndex {
        &self.index
    }

    /// The engine configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Top-k with the paper's mixture-of-LM model.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        self.search_with(query, k, Scorer::MixtureLm)
    }

    /// Top-k with an explicit scorer choice.
    pub fn search_with(&self, query: &str, k: usize, scorer: Scorer) -> Vec<Hit> {
        self.search_in(query, k, scorer, &self.index)
    }

    /// Top-k with an explicit scorer, scored against an explicit
    /// collection view. The sharded path passes the globally-merged
    /// [`CorpusStats`](crate::corpus::CorpusStats) so every shard's
    /// scores match the single-graph engine bit-for-bit; with the
    /// engine's own index this is exactly [`SearchEngine::search_with`].
    pub fn search_in<C: CollectionView + ?Sized>(
        &self,
        query: &str,
        k: usize,
        scorer: Scorer,
        collection: &C,
    ) -> Vec<Hit> {
        let terms = self.config.analyzer.analyze(query);
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let candidates = self.index.candidates(&terms);
        let mut hits: Vec<Hit> = candidates
            .into_iter()
            .map(|e| {
                let score = match scorer {
                    Scorer::MixtureLm => {
                        self.config
                            .lm
                            .score_in(&self.index, collection, e.raw(), &terms)
                    }
                    Scorer::Bm25 => {
                        self.config
                            .bm25
                            .score_in(&self.index, collection, e.raw(), &terms)
                    }
                };
                Hit { entity: e, score }
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }

    /// The five-field representation of an entity, as indexed.
    pub fn representation(&self, kg: &KnowledgeGraph, e: EntityId) -> FiveFieldRepr {
        FiveFieldRepr::build(kg, e, self.config.max_related)
    }

    /// Top-k for a structured query with `field:term` restrictions (see
    /// [`crate::querylang`]). Free terms use the configured mixture
    /// weights; restricted terms are scored against their single field.
    pub fn search_structured(&self, query: &str, k: usize) -> Vec<Hit> {
        use crate::lm::{FieldWeights, MixtureLm};
        let parsed = crate::querylang::parse_query(&self.config.analyzer, query);
        if parsed.is_empty() || k == 0 {
            return Vec::new();
        }
        let all_terms = parsed.term_strings();
        let candidates = self.index.candidates(&all_terms);
        // group terms by their scoring weights
        let free: Vec<String> = parsed
            .terms
            .iter()
            .filter(|t| t.field.is_none())
            .map(|t| t.term.clone())
            .collect();
        let mut per_field: Vec<(MixtureLm, Vec<String>)> = Vec::new();
        for field in crate::fields::Field::ALL {
            let terms: Vec<String> = parsed
                .terms
                .iter()
                .filter(|t| t.field == Some(field))
                .map(|t| t.term.clone())
                .collect();
            if !terms.is_empty() {
                per_field.push((
                    MixtureLm {
                        weights: FieldWeights::single(field),
                        smoothing: self.config.lm.smoothing,
                    },
                    terms,
                ));
            }
        }
        let mut hits: Vec<Hit> = candidates
            .into_iter()
            .map(|e| {
                let mut score = 0.0;
                if !free.is_empty() {
                    score += self.config.lm.score(&self.index, e.raw(), &free);
                }
                for (lm, terms) in &per_field {
                    score += lm.score(&self.index, e.raw(), terms);
                }
                Hit { entity: e, score }
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }
}

/// Keep the `k` best hits, sorted by descending score with entity id as a
/// deterministic tiebreak.
fn top_k(hits: &mut Vec<Hit>, k: usize) {
    hits.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.entity.cmp(&b.entity))
    });
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    fn engine() -> (pivote_kg::KnowledgeGraph, SearchEngine) {
        let kg = generate(&DatagenConfig::tiny());
        let engine = SearchEngine::with_defaults(&kg);
        (kg, engine)
    }

    #[test]
    fn exact_name_query_ranks_target_first() {
        let (kg, engine) = engine();
        // pick some film and query its full label
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let label = kg.display_name(f);
        let hits = engine.search(&label, 10);
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].entity,
            f,
            "query {label:?} should rank its own entity first, got {:?}",
            kg.display_name(hits[0].entity)
        );
    }

    #[test]
    fn scores_are_descending_and_k_respected() {
        let (_, engine) = engine();
        let hits = engine.search("the film", 5);
        assert!(hits.len() <= 5);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (_, engine) = engine();
        assert!(engine.search("", 10).is_empty());
        assert!(engine.search("the of and", 10).is_empty());
        assert!(engine.search("something", 0).is_empty());
    }

    #[test]
    fn unknown_terms_return_nothing() {
        let (_, engine) = engine();
        assert!(engine.search("qqqqxyzzy", 10).is_empty());
    }

    #[test]
    fn bm25_scorer_also_finds_entities() {
        let (kg, engine) = engine();
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let label = kg.display_name(f);
        let hits = engine.search_with(&label, 10, Scorer::Bm25);
        assert!(hits.iter().any(|h| h.entity == f));
    }

    #[test]
    fn structured_query_restricts_to_field() {
        let (kg, engine) = engine();
        // find an entity with an alias and query it via the similar field
        let aliased = kg
            .entity_ids()
            .find(|&e| !kg.aliases(e).is_empty())
            .expect("datagen produces aliases");
        let alias = kg.aliases(aliased)[0].clone();
        let hits = engine.search_structured(&format!("similar:{alias}"), 5);
        assert!(
            hits.first().map(|h| h.entity) == Some(aliased),
            "alias-restricted query should find the aliased entity first"
        );
        // restricting the same text to the wrong field must not find it
        // at the same strength (names field does not contain the alias)
        let wrong = engine.search_structured(&format!("name:{alias}"), 5);
        let right_score = hits[0].score;
        let wrong_score = wrong
            .iter()
            .find(|h| h.entity == aliased)
            .map(|h| h.score)
            .unwrap_or(f64::NEG_INFINITY);
        assert!(right_score > wrong_score);
    }

    #[test]
    fn structured_query_mixes_free_and_restricted() {
        let (kg, engine) = engine();
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        let label = kg.display_name(f);
        let word = label.split_whitespace().last().unwrap();
        let hits = engine.search_structured(&format!("{word} cat:films"), 10);
        assert!(!hits.is_empty());
        assert!(hits.iter().any(|h| h.entity == f));
    }

    #[test]
    fn deterministic_results() {
        let (_, engine) = engine();
        let a = engine.search("silent harbor", 10);
        let b = engine.search("silent harbor", 10);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.entity == y.entity));
    }
}

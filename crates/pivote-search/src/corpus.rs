//! Collection statistics decoupled from the inverted index, so sharded
//! deployments can score with **global** corpus statistics while term
//! frequencies and document lengths stay shard-local.
//!
//! The scoring formulas (mixture-of-LM smoothing, BM25F idf and length
//! normalization) read their collection-level inputs — total field
//! length, vocabulary size, collection/document frequency, document
//! count — through the [`CollectionView`] trait. A single-graph
//! [`FieldedIndex`](crate::index::FieldedIndex) implements it directly;
//! a sharded deployment merges per-shard indexes into one
//! [`CorpusStats`] (counting each **owned** document exactly once, so
//! ghost copies don't inflate the statistics) and scores every shard
//! against the merged view. Because the per-term inputs are exact
//! integer sums, the merged statistics equal the single-graph statistics
//! bit-for-bit — which is what makes sharded search scores bit-identical
//! to single-graph scores.

use crate::fields::Field;
use crate::index::FieldedIndex;
use std::collections::HashMap;

/// Collection-level inputs of the scoring formulas, abstracted over
/// "one index over everything" vs "merged statistics across shards".
pub trait CollectionView {
    /// Total number of documents in the (logical) collection.
    fn n_docs(&self) -> usize;
    /// Collection language-model probability `p(t | C_field)` with the
    /// same add-epsilon flooring as
    /// [`FieldIndex::collection_prob`](crate::index::FieldIndex::collection_prob).
    fn collection_prob(&self, f: Field, term: &str) -> f64;
    /// Average field length over all documents of the collection.
    fn avg_len(&self, f: Field) -> f64;
    /// Document frequency of `term` in `f`, `None` when no document of
    /// the collection contains it in that field.
    fn df(&self, f: Field, term: &str) -> Option<usize>;
}

/// Per-term collection statistics of one field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermStats {
    /// Collection frequency: total occurrences across owned documents.
    pub cf: u64,
    /// Document frequency: owned documents containing the term.
    pub df: usize,
}

/// Collection statistics of one field, merged over owned documents.
#[derive(Debug, Clone, Default)]
pub struct FieldCorpus {
    total_len: u64,
    terms: HashMap<String, TermStats>,
}

impl FieldCorpus {
    /// Total tokens across owned documents.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Number of distinct terms with at least one owned occurrence.
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// The merged statistics of one term, if any owned document has it.
    pub fn term(&self, term: &str) -> Option<&TermStats> {
        self.terms.get(term)
    }
}

/// Corpus statistics over the owned documents of a collection —
/// the merge target for per-shard indexes.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    n_docs: usize,
    fields: [FieldCorpus; 5],
}

impl CorpusStats {
    /// Empty statistics (merge indexes in with [`CorpusStats::absorb`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The statistics of a single index, counting every document as
    /// owned — by construction equal to what the index itself reports.
    pub fn from_index(index: &FieldedIndex) -> Self {
        let mut stats = Self::new();
        stats.absorb(index, |_| true);
        stats
    }

    /// Merge one (shard) index into the statistics, counting only the
    /// documents `owned` accepts — each shard owns a disjoint document
    /// set, so absorbing every shard of a partition counts each logical
    /// document exactly once.
    pub fn absorb<F: Fn(u32) -> bool>(&mut self, index: &FieldedIndex, owned: F) {
        let docs = index.doc_count() as u32;
        self.n_docs += (0..docs).filter(|&d| owned(d)).count();
        for f in Field::ALL {
            let fi = index.field(f);
            let fc = &mut self.fields[f.index()];
            for d in 0..docs {
                if owned(d) {
                    fc.total_len += u64::from(fi.doc_len(d));
                }
            }
            for (term, posting) in fi.postings() {
                let mut cf = 0u64;
                let mut df = 0usize;
                for &(d, tf) in &posting.docs {
                    if owned(d) {
                        cf += u64::from(tf);
                        df += 1;
                    }
                }
                if df > 0 {
                    let t = fc.terms.entry(term.to_owned()).or_default();
                    t.cf += cf;
                    t.df += df;
                }
            }
        }
    }

    /// The merged statistics of one field.
    pub fn field(&self, f: Field) -> &FieldCorpus {
        &self.fields[f.index()]
    }
}

impl CollectionView for CorpusStats {
    fn n_docs(&self) -> usize {
        self.n_docs
    }

    fn collection_prob(&self, f: Field, term: &str) -> f64 {
        let fc = self.field(f);
        let cf = fc.term(term).map(|t| t.cf).unwrap_or(0) as f64;
        let total = fc.total_len.max(1) as f64;
        (cf + 0.01) / (total + 0.01 * (fc.terms.len().max(1) as f64))
    }

    fn avg_len(&self, f: Field) -> f64 {
        if self.n_docs == 0 {
            0.0
        } else {
            self.field(f).total_len as f64 / self.n_docs as f64
        }
    }

    fn df(&self, f: Field, term: &str) -> Option<usize> {
        self.field(f).term(term).map(|t| t.df)
    }
}

impl CollectionView for FieldedIndex {
    fn n_docs(&self) -> usize {
        self.doc_count()
    }

    fn collection_prob(&self, f: Field, term: &str) -> f64 {
        self.field(f).collection_prob(term)
    }

    fn avg_len(&self, f: Field) -> f64 {
        self.field(f).avg_len()
    }

    fn df(&self, f: Field, term: &str) -> Option<usize> {
        self.field(f).posting(term).map(|p| p.df())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};
    use pivote_text::Analyzer;

    #[test]
    fn from_index_matches_the_index_view_bit_for_bit() {
        let kg = generate(&DatagenConfig::tiny());
        let idx = FieldedIndex::build(&kg, &Analyzer::default(), 128);
        let stats = CorpusStats::from_index(&idx);
        assert_eq!(stats.n_docs(), idx.n_docs());
        for f in Field::ALL {
            assert_eq!(stats.field(f).total_len(), idx.field(f).total_len());
            assert_eq!(
                stats.field(f).vocabulary_size(),
                idx.field(f).vocabulary_size()
            );
            assert_eq!(stats.avg_len(f).to_bits(), idx.avg_len(f).to_bits());
            for term in ["film", "the", "of", "american", "zzzz-unseen"] {
                assert_eq!(
                    stats.collection_prob(f, term).to_bits(),
                    idx.collection_prob(f, term).to_bits(),
                    "collection_prob({term}) in {f:?}"
                );
                assert_eq!(stats.df(f, term), idx.df(f, term));
            }
        }
    }

    #[test]
    fn absorbing_disjoint_halves_equals_the_whole() {
        let kg = generate(&DatagenConfig::tiny());
        let idx = FieldedIndex::build(&kg, &Analyzer::default(), 128);
        let whole = CorpusStats::from_index(&idx);
        let cut = (idx.doc_count() / 2) as u32;
        let mut halves = CorpusStats::new();
        halves.absorb(&idx, |d| d < cut);
        halves.absorb(&idx, |d| d >= cut);
        assert_eq!(halves.n_docs(), whole.n_docs());
        for f in Field::ALL {
            assert_eq!(halves.field(f).total_len(), whole.field(f).total_len());
            assert_eq!(
                halves.field(f).vocabulary_size(),
                whole.field(f).vocabulary_size()
            );
            for term in ["film", "american", "work"] {
                assert_eq!(
                    halves.field(f).term(term).copied(),
                    whole.field(f).term(term).copied(),
                    "term {term} in {f:?}"
                );
            }
        }
    }
}

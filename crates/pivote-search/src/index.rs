//! Per-field inverted index with the collection statistics the retrieval
//! models need (term/collection frequencies, document and average lengths).

use crate::fields::{Field, FiveFieldRepr};
use pivote_kg::{EntityId, KnowledgeGraph};
use pivote_text::Analyzer;
use std::collections::HashMap;

/// Postings of one term within one field.
#[derive(Debug, Clone, Default)]
pub struct Posting {
    /// `(entity raw id, term frequency)` sorted by entity id.
    pub docs: Vec<(u32, u32)>,
    /// Collection frequency: total occurrences across all documents.
    pub cf: u64,
}

impl Posting {
    /// Term frequency in one document (0 when absent).
    pub fn tf(&self, doc: u32) -> u32 {
        match self.docs.binary_search_by_key(&doc, |&(d, _)| d) {
            Ok(i) => self.docs[i].1,
            Err(_) => 0,
        }
    }

    /// Document frequency: number of documents containing the term.
    pub fn df(&self) -> usize {
        self.docs.len()
    }
}

/// Inverted index for one field.
#[derive(Debug, Default)]
pub struct FieldIndex {
    postings: HashMap<String, Posting>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl FieldIndex {
    /// Postings of `term`, if any document contains it.
    pub fn posting(&self, term: &str) -> Option<&Posting> {
        self.postings.get(term)
    }

    /// Token count of document `doc` in this field.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(doc as usize).copied().unwrap_or(0)
    }

    /// Total tokens in this field across the collection.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Average field length over all documents.
    pub fn avg_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// Collection language-model probability `p(t | C_field)`, with
    /// add-epsilon flooring so unseen terms keep a tiny nonzero mass.
    pub fn collection_prob(&self, term: &str) -> f64 {
        let cf = self.posting(term).map(|p| p.cf).unwrap_or(0) as f64;
        let total = self.total_len.max(1) as f64;
        (cf + 0.01) / (total + 0.01 * (self.postings.len().max(1) as f64))
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// All `(term, posting)` pairs, in arbitrary order — the iteration
    /// corpus-statistics merging is built on.
    pub fn postings(&self) -> impl Iterator<Item = (&str, &Posting)> {
        self.postings.iter().map(|(t, p)| (t.as_str(), p))
    }
}

/// The full five-field index over every entity of a knowledge graph.
#[derive(Debug)]
pub struct FieldedIndex {
    fields: [FieldIndex; 5],
    n_docs: usize,
}

impl FieldedIndex {
    /// Index every entity of `kg`. `max_related` caps the related-names
    /// field per entity (see [`FiveFieldRepr::build`]).
    pub fn build(kg: &KnowledgeGraph, analyzer: &Analyzer, max_related: usize) -> Self {
        Self::build_keyed(kg, analyzer, max_related, |e| e.raw())
    }

    /// Index every entity of `kg`, selecting capped related-names
    /// neighbours in `(predicate, key)` order (see
    /// [`FiveFieldRepr::build_keyed`]). Shard-local indexes pass the
    /// local→global id map here so the documents they build are
    /// bit-identical to the single-graph documents; [`Self::build`] is
    /// the identity-key special case.
    pub fn build_keyed(
        kg: &KnowledgeGraph,
        analyzer: &Analyzer,
        max_related: usize,
        key: impl Fn(EntityId) -> u32 + Copy,
    ) -> Self {
        let n = kg.entity_count();
        let mut fields: [FieldIndex; 5] = Default::default();
        for f in &mut fields {
            f.doc_len = vec![0; n];
        }
        // term -> tf accumulation per doc, reused across docs
        let mut tf_buf: HashMap<String, u32> = HashMap::new();
        for e in kg.entity_ids() {
            let repr = FiveFieldRepr::build_keyed(kg, e, max_related, key);
            for field in Field::ALL {
                let fi = &mut fields[field.index()];
                tf_buf.clear();
                let mut len = 0u32;
                for snippet in repr.field(field) {
                    for token in analyzer.analyze(snippet) {
                        *tf_buf.entry(token).or_insert(0) += 1;
                        len += 1;
                    }
                }
                fi.doc_len[e.index()] = len;
                fi.total_len += u64::from(len);
                for (term, tf) in tf_buf.drain() {
                    let posting = fi.postings.entry(term).or_default();
                    posting.docs.push((e.raw(), tf));
                    posting.cf += u64::from(tf);
                }
            }
        }
        // entity_ids iterates in ascending order, so postings are sorted.
        debug_assert!(fields.iter().all(|f| f
            .postings
            .values()
            .all(|p| p.docs.windows(2).all(|w| w[0].0 < w[1].0))));
        Self { fields, n_docs: n }
    }

    /// The index of one field.
    pub fn field(&self, f: Field) -> &FieldIndex {
        &self.fields[f.index()]
    }

    /// Number of indexed documents (= entities).
    pub fn doc_count(&self) -> usize {
        self.n_docs
    }

    /// Union of candidate documents containing `term` in any field.
    pub fn candidates(&self, terms: &[String]) -> Vec<EntityId> {
        let mut docs: Vec<u32> = Vec::new();
        for term in terms {
            for field in &self.fields {
                if let Some(p) = field.posting(term) {
                    docs.extend(p.docs.iter().map(|&(d, _)| d));
                }
            }
        }
        docs.sort_unstable();
        docs.dedup();
        docs.into_iter().map(EntityId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{KgBuilder, KnowledgeGraph, Literal};

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let apollo = b.entity("Apollo_13");
        let hanks = b.entity("Tom_Hanks");
        b.label(gump, "Forrest Gump");
        b.label(apollo, "Apollo 13");
        b.label(hanks, "Tom Hanks");
        let starring = b.predicate("starring");
        b.triple(gump, starring, hanks);
        b.triple(apollo, starring, hanks);
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::string("142 minutes"));
        b.categorized(gump, "American films");
        b.categorized(apollo, "American films");
        b.finish()
    }

    fn index() -> (KnowledgeGraph, FieldedIndex) {
        let kg = kg();
        let idx = FieldedIndex::build(&kg, &Analyzer::default(), 64);
        (kg, idx)
    }

    #[test]
    fn doc_count_equals_entities() {
        let (kg, idx) = index();
        assert_eq!(idx.doc_count(), kg.entity_count());
    }

    #[test]
    fn names_field_finds_gump() {
        let (kg, idx) = index();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let p = idx.field(Field::Names).posting("gump").unwrap();
        assert_eq!(p.df(), 1);
        assert_eq!(p.tf(gump.raw()), 1);
    }

    #[test]
    fn categories_field_shared_between_films() {
        let (_, idx) = index();
        let p = idx.field(Field::Categories).posting("american").unwrap();
        assert_eq!(p.df(), 2);
        assert_eq!(p.cf, 2);
    }

    #[test]
    fn related_names_field_connects_hanks_to_films() {
        let (kg, idx) = index();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        // "gump" appears in the related-names field of Tom_Hanks (incoming edge)
        let p = idx.field(Field::RelatedNames).posting("gump").unwrap();
        assert!(p.tf(hanks.raw()) > 0);
    }

    #[test]
    fn collection_prob_positive_even_for_unseen() {
        let (_, idx) = index();
        let seen = idx.field(Field::Names).collection_prob("gump");
        let unseen = idx.field(Field::Names).collection_prob("zzzz");
        assert!(seen > unseen);
        assert!(unseen > 0.0);
    }

    #[test]
    fn doc_lengths_accumulate() {
        let (kg, idx) = index();
        let gump = kg.entity("Forrest_Gump").unwrap();
        assert_eq!(idx.field(Field::Names).doc_len(gump.raw()), 2); // forrest gump
        assert!(idx.field(Field::Names).avg_len() > 0.0);
    }

    #[test]
    fn candidates_union_across_fields() {
        let (kg, idx) = index();
        let cands = idx.candidates(&["gump".to_owned()]);
        // Forrest_Gump (names) + Tom_Hanks (related names)
        assert!(cands.contains(&kg.entity("Forrest_Gump").unwrap()));
        assert!(cands.contains(&kg.entity("Tom_Hanks").unwrap()));
    }

    #[test]
    fn empty_graph_index() {
        let kg = KgBuilder::new().finish();
        let idx = FieldedIndex::build(&kg, &Analyzer::default(), 64);
        assert_eq!(idx.doc_count(), 0);
        assert!(idx.candidates(&["x".to_owned()]).is_empty());
    }
}

//! A small query language for fielded search: plain keywords plus
//! `field:term` restrictions, e.g.
//!
//! ```text
//! gump cat:american similar:geenbow
//! ```
//!
//! Restricted terms are scored against a single field of the five-field
//! representation; free terms use the full mixture. Field prefixes:
//! `name:`/`names:`, `attr:`/`attributes:`, `cat:`/`categories:`,
//! `similar:`, `related:`.

use crate::fields::Field;
use pivote_text::Analyzer;

/// One analyzed query term, optionally restricted to a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTerm {
    /// The analyzed token.
    pub term: String,
    /// `Some(field)` for `field:term` syntax, `None` for free terms.
    pub field: Option<Field>,
}

/// A parsed structured query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedQuery {
    /// All terms in input order.
    pub terms: Vec<QueryTerm>,
}

impl ParsedQuery {
    /// Whether no usable terms remain after analysis.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Just the token strings (for candidate gathering).
    pub fn term_strings(&self) -> Vec<String> {
        self.terms.iter().map(|t| t.term.clone()).collect()
    }
}

fn field_for_prefix(prefix: &str) -> Option<Field> {
    match prefix {
        "name" | "names" => Some(Field::Names),
        "attr" | "attribute" | "attributes" => Some(Field::Attributes),
        "cat" | "category" | "categories" => Some(Field::Categories),
        "similar" | "alias" => Some(Field::SimilarNames),
        "related" => Some(Field::RelatedNames),
        _ => None,
    }
}

/// Parse a raw query string. Unknown prefixes are treated as literal
/// text (`foo:bar` with unknown `foo` analyzes both tokens as free
/// terms).
pub fn parse_query(analyzer: &Analyzer, raw: &str) -> ParsedQuery {
    let mut terms = Vec::new();
    for chunk in raw.split_whitespace() {
        let (field, body) = match chunk.split_once(':') {
            Some((prefix, rest)) => match field_for_prefix(&prefix.to_lowercase()) {
                Some(f) => (Some(f), rest),
                None => (None, chunk),
            },
            None => (None, chunk),
        };
        for token in analyzer.analyze(body) {
            terms.push(QueryTerm { term: token, field });
        }
    }
    ParsedQuery { terms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_terms_are_free() {
        let q = parse_query(&Analyzer::default(), "forrest gump");
        assert_eq!(q.terms.len(), 2);
        assert!(q.terms.iter().all(|t| t.field.is_none()));
    }

    #[test]
    fn field_prefixes_restrict() {
        let q = parse_query(&Analyzer::default(), "gump cat:american similar:geenbow");
        assert_eq!(q.terms.len(), 3);
        assert_eq!(q.terms[0].field, None);
        assert_eq!(q.terms[1].field, Some(Field::Categories));
        assert_eq!(q.terms[2].field, Some(Field::SimilarNames));
    }

    #[test]
    fn unknown_prefix_is_literal() {
        let q = parse_query(&Analyzer::default(), "http:example");
        // "http" and "example" both analyzed as free terms
        assert!(q.terms.iter().all(|t| t.field.is_none()));
        assert_eq!(q.terms.len(), 2);
    }

    #[test]
    fn prefix_aliases() {
        for (p, f) in [
            ("name", Field::Names),
            ("names", Field::Names),
            ("attr", Field::Attributes),
            ("categories", Field::Categories),
            ("alias", Field::SimilarNames),
            ("related", Field::RelatedNames),
        ] {
            let q = parse_query(&Analyzer::default(), &format!("{p}:gump"));
            assert_eq!(q.terms[0].field, Some(f), "prefix {p}");
        }
    }

    #[test]
    fn stopwords_removed_even_in_fields() {
        let q = parse_query(&Analyzer::default(), "cat:the");
        assert!(q.is_empty());
    }
}

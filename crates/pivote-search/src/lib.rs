//! # pivote-search — the PivotE search engine (paper §2.2)
//!
//! Keyword entity retrieval over a knowledge graph using the paper's
//! five-field entity representation (Table 1) scored with a mixture of
//! per-field language models (the multi-fielded query-likelihood model of
//! Ponte & Croft / Ogilvie & Callan), plus a BM25F baseline for the
//! comparison experiments.
//!
//! ```
//! use pivote_kg::{generate, DatagenConfig};
//! use pivote_search::SearchEngine;
//!
//! let kg = generate(&DatagenConfig::tiny());
//! let engine = SearchEngine::with_defaults(&kg);
//! let hits = engine.search("film", 5);
//! assert!(hits.len() <= 5);
//! ```

#![warn(missing_docs)]

pub mod bm25;
pub mod corpus;
pub mod engine;
pub mod fields;
pub mod index;
pub mod lm;
pub mod querylang;

pub use bm25::Bm25;
pub use corpus::{CollectionView, CorpusStats, FieldCorpus, TermStats};
pub use engine::{Hit, Scorer, SearchConfig, SearchEngine};
pub use fields::{Field, FiveFieldRepr};
pub use index::{FieldIndex, FieldedIndex, Posting};
pub use lm::{FieldWeights, MixtureLm, Smoothing};
pub use querylang::{parse_query, ParsedQuery, QueryTerm};

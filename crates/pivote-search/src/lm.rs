//! Mixture of language models — the paper's retrieval model (§2.2).
//!
//! "The mixture of language models (i.e., a multi-fielded extension of the
//! query likelihood retrieval model, where the retrieval score of a
//! structured document is a linear combination of probabilities of query
//! terms in the language models calculated for each document field)" —
//! i.e. the Ogilvie–Callan fielded extension of Ponte & Croft \[4\]:
//!
//! ```text
//! score(e, q) = Σ_{t ∈ q} log Σ_{f ∈ fields} w_f · p(t | θ_{e,f})
//! ```
//!
//! with per-field smoothing of `p(t | θ_{e,f})` against the field's
//! collection model (Dirichlet or Jelinek–Mercer).

use crate::corpus::CollectionView;
use crate::fields::Field;
use crate::index::FieldedIndex;
use serde::{Deserialize, Serialize};

/// Smoothing of the per-field document language model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// Dirichlet prior smoothing with pseudo-count `mu`.
    Dirichlet {
        /// Pseudo-count mass of the collection model.
        mu: f64,
    },
    /// Jelinek–Mercer interpolation with weight `lambda` on the collection
    /// model.
    JelinekMercer {
        /// Collection-model interpolation weight in `[0, 1]`.
        lambda: f64,
    },
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing::Dirichlet { mu: 100.0 }
    }
}

impl Smoothing {
    /// Smoothed `p(t | θ_{e,f})` given the raw term frequency, the field
    /// length of the document, and the collection probability of the term.
    #[inline]
    pub fn prob(&self, tf: u32, doc_len: u32, collection_prob: f64) -> f64 {
        match *self {
            Smoothing::Dirichlet { mu } => {
                (f64::from(tf) + mu * collection_prob) / (f64::from(doc_len) + mu)
            }
            Smoothing::JelinekMercer { lambda } => {
                let ml = if doc_len == 0 {
                    0.0
                } else {
                    f64::from(tf) / f64::from(doc_len)
                };
                (1.0 - lambda) * ml + lambda * collection_prob
            }
        }
    }
}

/// Per-field interpolation weights of the mixture, in [`Field::ALL`]
/// order. They are renormalized at scoring time, so any positive vector
/// works.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldWeights(pub [f64; 5]);

impl Default for FieldWeights {
    /// Weights favouring name matches, with meaningful mass on categories
    /// and related/similar names — the standard fielded-entity-search
    /// profile.
    fn default() -> Self {
        FieldWeights([0.40, 0.10, 0.20, 0.15, 0.15])
    }
}

impl FieldWeights {
    /// Put all weight on a single field (the single-field LM baseline).
    pub fn single(field: Field) -> Self {
        let mut w = [0.0; 5];
        w[field.index()] = 1.0;
        FieldWeights(w)
    }

    /// Uniform weights across all five fields.
    pub fn uniform() -> Self {
        FieldWeights([0.2; 5])
    }

    fn normalized(&self) -> [f64; 5] {
        let sum: f64 = self.0.iter().sum();
        if sum <= 0.0 {
            return [0.2; 5];
        }
        let mut out = self.0;
        for v in &mut out {
            *v /= sum;
        }
        out
    }
}

/// The mixture-of-LM scorer.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixtureLm {
    /// Field interpolation weights.
    pub weights: FieldWeights,
    /// Per-field smoothing rule.
    pub smoothing: Smoothing,
}

impl MixtureLm {
    /// Log-likelihood score of one document for analyzed query `terms`.
    ///
    /// Returns the sum over terms of the log of the weighted field
    /// mixture. Documents sharing no term still get a finite background
    /// score, so callers should restrict scoring to candidate documents.
    pub fn score(&self, index: &FieldedIndex, doc: u32, terms: &[String]) -> f64 {
        self.score_in(index, index, doc, terms)
    }

    /// Like [`MixtureLm::score`], but collection-level statistics come
    /// from an explicit [`CollectionView`] while term frequencies and
    /// document lengths stay with `index`. Sharded deployments pass the
    /// globally-merged [`CorpusStats`](crate::corpus::CorpusStats) here
    /// so every shard scores against the same collection model; with
    /// `collection = index` this is exactly [`MixtureLm::score`].
    pub fn score_in<C: CollectionView + ?Sized>(
        &self,
        index: &FieldedIndex,
        collection: &C,
        doc: u32,
        terms: &[String],
    ) -> f64 {
        let w = self.weights.normalized();
        let mut score = 0.0;
        for term in terms {
            let mut mix = 0.0;
            for field in Field::ALL {
                let weight = w[field.index()];
                if weight == 0.0 {
                    continue;
                }
                let fi = index.field(field);
                let tf = fi.posting(term).map(|p| p.tf(doc)).unwrap_or(0);
                let p = self.smoothing.prob(
                    tf,
                    fi.doc_len(doc),
                    collection.collection_prob(field, term),
                );
                mix += weight * p;
            }
            // mix > 0 because collection probs are floored.
            score += mix.max(f64::MIN_POSITIVE).ln();
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirichlet_smoothing_blends_toward_collection() {
        let s = Smoothing::Dirichlet { mu: 10.0 };
        // empty doc: pure collection probability
        assert!((s.prob(0, 0, 0.5) - 0.5).abs() < 1e-12);
        // matching term beats background
        assert!(s.prob(3, 10, 0.01) > s.prob(0, 10, 0.01));
        // longer doc dilutes
        assert!(s.prob(1, 10, 0.01) > s.prob(1, 100, 0.01));
    }

    #[test]
    fn jm_smoothing_interpolates() {
        let s = Smoothing::JelinekMercer { lambda: 0.5 };
        let p = s.prob(5, 10, 0.2);
        assert!((p - (0.5 * 0.5 + 0.5 * 0.2)).abs() < 1e-12);
        // zero-length doc falls back to collection only
        assert!((s.prob(0, 0, 0.2) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn weights_normalize() {
        let w = FieldWeights([2.0, 0.0, 0.0, 0.0, 0.0]).normalized();
        assert!((w[0] - 1.0).abs() < 1e-12);
        let degenerate = FieldWeights([0.0; 5]).normalized();
        assert!((degenerate.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_field_weights() {
        let w = FieldWeights::single(Field::Categories);
        assert_eq!(w.0[Field::Categories.index()], 1.0);
        assert_eq!(w.0.iter().sum::<f64>(), 1.0);
    }
}

//! The five-field entity representation (Table 1 of the paper).
//!
//! Each entity becomes a structured document with five fields:
//!
//! | Field | Content |
//! |---|---|
//! | names | its labels |
//! | attributes | its literals |
//! | categories | the labels of its categories |
//! | similar entity names | labels of redirected/disambiguated entities |
//! | related entity names | labels of connected entities |
//!
//! The same builder feeds both the inverted index and the human-readable
//! Table-1 rendering used by `examples/figures.rs`.

use pivote_kg::{EntityId, KnowledgeGraph};
use serde::{Deserialize, Serialize};

/// The five fields, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Field {
    /// Entity labels.
    Names,
    /// Literal values.
    Attributes,
    /// Category labels.
    Categories,
    /// Redirect / disambiguation aliases.
    SimilarNames,
    /// Labels of connected entities (both edge directions).
    RelatedNames,
}

impl Field {
    /// All five fields in canonical order.
    pub const ALL: [Field; 5] = [
        Field::Names,
        Field::Attributes,
        Field::Categories,
        Field::SimilarNames,
        Field::RelatedNames,
    ];

    /// Dense index `0..5` of this field.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Field::Names => 0,
            Field::Attributes => 1,
            Field::Categories => 2,
            Field::SimilarNames => 3,
            Field::RelatedNames => 4,
        }
    }

    /// The paper's field name (Table 1).
    pub fn name(self) -> &'static str {
        match self {
            Field::Names => "names",
            Field::Attributes => "attributes",
            Field::Categories => "categories",
            Field::SimilarNames => "similar entity names",
            Field::RelatedNames => "related entity names",
        }
    }
}

/// The textual content of the five fields for one entity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiveFieldRepr {
    /// One list of snippets per field, indexed by [`Field::index`].
    pub fields: [Vec<String>; 5],
}

impl FiveFieldRepr {
    /// Build the representation of `e` from the graph.
    ///
    /// `max_related` bounds the number of neighbour labels pulled into the
    /// "related entity names" field so hub entities don't produce
    /// megabyte-scale documents (the paper's DBpedia hubs have thousands
    /// of neighbours).
    pub fn build(kg: &KnowledgeGraph, e: EntityId, max_related: usize) -> Self {
        Self::build_keyed(kg, e, max_related, |id| id.raw())
    }

    /// Like [`FiveFieldRepr::build`], but the capped related-names
    /// neighbours are selected in `(predicate, key(neighbour))` order.
    ///
    /// The adjacency rows enumerate neighbours sorted by their ids *in
    /// `kg`'s own id space*, so a shard-local graph (whose ghosts sit
    /// above the owned range) would truncate a hub entity's neighbour
    /// list differently than the global graph does. Passing the shard's
    /// local→global map as `key` restores the global selection order,
    /// making the shard-built document bit-identical to the single-graph
    /// one. With the identity key this is exactly [`FiveFieldRepr::build`]
    /// (rows are already sorted by `(predicate, id)`).
    pub fn build_keyed(
        kg: &KnowledgeGraph,
        e: EntityId,
        max_related: usize,
        key: impl Fn(EntityId) -> u32,
    ) -> Self {
        let mut fields: [Vec<String>; 5] = Default::default();
        fields[Field::Names.index()].push(kg.display_name(e));
        let name = kg.entity_name(e);
        let spaced = name.replace('_', " ");
        if kg.label(e) != Some(spaced.as_str()) && kg.label(e).is_some() {
            fields[Field::Names.index()].push(spaced);
        }
        for (_, lit) in kg.literals(e) {
            fields[Field::Attributes.index()].push(lit.lexical.clone());
        }
        for c in kg.categories_of(e) {
            fields[Field::Categories.index()].push(kg.category_name(c).to_owned());
        }
        for alias in kg.aliases(e) {
            fields[Field::SimilarNames.index()].push(alias.clone());
        }
        let related = &mut fields[Field::RelatedNames.index()];
        let push_sorted = |edges: &mut Vec<(u32, u32, EntityId)>, related: &mut Vec<String>| {
            edges.sort_unstable_by_key(|&(p, k, _)| (p, k));
            for &(_, _, n) in edges.iter().take(max_related.saturating_sub(related.len())) {
                related.push(kg.display_name(n));
            }
        };
        let mut out: Vec<(u32, u32, EntityId)> =
            kg.out_edges(e).map(|(p, o)| (p.raw(), key(o), o)).collect();
        push_sorted(&mut out, related);
        if related.len() < max_related {
            let mut inc: Vec<(u32, u32, EntityId)> =
                kg.in_edges(e).map(|(p, s)| (p.raw(), key(s), s)).collect();
            push_sorted(&mut inc, related);
        }
        Self { fields }
    }

    /// The snippets of one field.
    pub fn field(&self, f: Field) -> &[String] {
        &self.fields[f.index()]
    }

    /// Concatenated text of one field (for indexing).
    pub fn field_text(&self, f: Field) -> String {
        self.fields[f.index()].join(" ")
    }

    /// Render as the paper's Table 1 (field name + content preview).
    pub fn to_table(&self, max_snippets: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<22} | content", "field");
        let _ = writeln!(out, "{}-+-{}", "-".repeat(22), "-".repeat(40));
        for f in Field::ALL {
            let snippets = self.field(f);
            let shown: Vec<&str> = snippets
                .iter()
                .take(max_snippets)
                .map(String::as_str)
                .collect();
            let suffix = if snippets.len() > max_snippets {
                ", etc."
            } else {
                ""
            };
            let _ = writeln!(out, "{:<22} | {}{}", f.name(), shown.join(", "), suffix);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{KgBuilder, Literal};

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let gump = b.entity("Forrest_Gump");
        let hanks = b.entity("Tom_Hanks");
        let zemeckis = b.entity("Robert_Zemeckis");
        b.label(gump, "Forrest Gump");
        b.label(hanks, "Tom Hanks");
        b.label(zemeckis, "Robert Zemeckis");
        let starring = b.predicate("starring");
        let director = b.predicate("director");
        b.triple(gump, starring, hanks);
        b.triple(gump, director, zemeckis);
        let runtime = b.predicate("runtime");
        b.literal_triple(gump, runtime, Literal::string("142 minutes"));
        b.categorized(gump, "American films");
        b.redirect("Geenbow", gump);
        b.redirect("Gumpian", gump);
        b.finish()
    }

    #[test]
    fn builds_all_five_fields_like_table1() {
        let kg = kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let r = FiveFieldRepr::build(&kg, gump, 64);
        assert_eq!(r.field(Field::Names), &["Forrest Gump".to_owned()]);
        assert_eq!(r.field(Field::Attributes), &["142 minutes".to_owned()]);
        assert_eq!(r.field(Field::Categories), &["American films".to_owned()]);
        assert_eq!(
            r.field(Field::SimilarNames),
            &["Geenbow".to_owned(), "Gumpian".to_owned()]
        );
        let related = r.field(Field::RelatedNames);
        assert!(related.contains(&"Tom Hanks".to_owned()));
        assert!(related.contains(&"Robert Zemeckis".to_owned()));
    }

    #[test]
    fn related_names_include_incoming_edges() {
        let kg = kg();
        let hanks = kg.entity("Tom_Hanks").unwrap();
        let r = FiveFieldRepr::build(&kg, hanks, 64);
        assert!(r
            .field(Field::RelatedNames)
            .contains(&"Forrest Gump".to_owned()));
    }

    #[test]
    fn max_related_caps_fanout() {
        let kg = kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let r = FiveFieldRepr::build(&kg, gump, 1);
        assert_eq!(r.field(Field::RelatedNames).len(), 1);
    }

    #[test]
    fn table_rendering_mentions_every_field() {
        let kg = kg();
        let gump = kg.entity("Forrest_Gump").unwrap();
        let table = FiveFieldRepr::build(&kg, gump, 64).to_table(2);
        for f in Field::ALL {
            assert!(table.contains(f.name()), "missing field {}", f.name());
        }
        assert!(table.contains("Geenbow"));
    }

    #[test]
    fn field_indices_are_dense() {
        let mut seen = [false; 5];
        for f in Field::ALL {
            seen[f.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Type-view rendering (Fig. 1-b): the domains coupled to a type and the
//! relations coupling them, from [`TypeCouplingStats`].

use crate::svg::SvgDoc;
use pivote_kg::{KnowledgeGraph, TypeCouplingStats, TypeId};
use std::fmt::Write as _;

/// ASCII view of the couplings out of one type, strongest first.
pub fn typeview_ascii(
    kg: &KnowledgeGraph,
    stats: &TypeCouplingStats,
    t: TypeId,
    limit: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[{}]", kg.type_name(t));
    for c in stats.couplings_from(t).into_iter().take(limit) {
        let _ = writeln!(
            out,
            "  ──{}→ [{}]  ({} triples, strength {:.3})",
            kg.predicate_name(c.predicate),
            kg.type_name(c.object_type),
            c.count,
            stats.strength(c.subject_type, c.predicate, c.object_type),
        );
    }
    out
}

/// SVG star diagram: the source type in the middle, coupled types around
/// it, edges labeled with predicates.
pub fn typeview_svg(
    kg: &KnowledgeGraph,
    stats: &TypeCouplingStats,
    t: TypeId,
    limit: usize,
) -> String {
    const W: u32 = 640;
    const H: u32 = 480;
    const BOX_W: f64 = 110.0;
    const BOX_H: f64 = 28.0;
    let couplings: Vec<_> = stats.couplings_from(t).into_iter().take(limit).collect();
    let mut doc = SvgDoc::new(W, H);
    let cx = W as f64 / 2.0 - BOX_W / 2.0;
    let cy = H as f64 / 2.0 - BOX_H / 2.0;
    let n = couplings.len().max(1) as f64;
    for (i, c) in couplings.iter().enumerate() {
        let angle = (i as f64 / n) * std::f64::consts::TAU;
        let r = 170.0;
        let x = cx + r * angle.cos();
        let y = cy + r * angle.sin() * 0.8;
        doc.arrow(
            cx + BOX_W / 2.0,
            cy + BOX_H / 2.0,
            x + BOX_W / 2.0,
            y + BOX_H / 2.0,
            "#888888",
        );
        doc.text(
            (cx + x) / 2.0 + BOX_W / 2.0,
            (cy + y) / 2.0 + BOX_H / 2.0 - 4.0,
            8.0,
            "middle",
            kg.predicate_name(c.predicate),
        );
        doc.rect(x, y, BOX_W, BOX_H, "#f0fff0", Some("#333333"));
        doc.text(
            x + BOX_W / 2.0,
            y + BOX_H / 2.0 + 3.0,
            9.0,
            "middle",
            kg.type_name(c.object_type),
        );
    }
    doc.rect(cx, cy, BOX_W, BOX_H, "#eef5ff", Some("#000000"));
    doc.text(
        cx + BOX_W / 2.0,
        cy + BOX_H / 2.0 + 3.0,
        10.0,
        "middle",
        kg.type_name(t),
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn ascii_lists_film_couplings() {
        let kg = generate(&DatagenConfig::tiny());
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let text = typeview_ascii(&kg, &stats, film, 10);
        assert!(text.starts_with("[Film]"));
        assert!(text.contains("starring"), "{text}");
        assert!(text.contains("Actor"), "{text}");
        assert!(text.contains("director"), "{text}");
    }

    #[test]
    fn limit_truncates_ascii() {
        let kg = generate(&DatagenConfig::tiny());
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let text = typeview_ascii(&kg, &stats, film, 2);
        assert_eq!(text.lines().count(), 3); // header + 2 couplings
    }

    #[test]
    fn svg_has_center_plus_satellites() {
        let kg = generate(&DatagenConfig::tiny());
        let stats = TypeCouplingStats::compute(&kg);
        let film = kg.type_id("Film").unwrap();
        let svg = typeview_svg(&kg, &stats, film, 5);
        assert_eq!(svg.matches("<rect").count(), 6); // 5 satellites + center
        assert!(svg.contains("Film"));
    }
}

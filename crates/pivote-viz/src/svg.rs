//! A minimal SVG document builder — enough for grid heat maps, node-link
//! path diagrams and labeled boxes, with XML escaping.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: u32,
    height: u32,
    body: String,
}

/// Escape text for inclusion in XML content or attributes.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

impl SvgDoc {
    /// Create a document with the given pixel dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    /// Filled rectangle with optional stroke.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = match stroke {
            Some(s) => format!(" stroke=\"{s}\" stroke-width=\"0.5\""),
            None => String::new(),
        };
        let _ = writeln!(
            self.body,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"{fill}\"{stroke_attr}/>"
        );
    }

    /// Text anchored at `(x, y)`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"{size:.1}\" font-family=\"monospace\" text-anchor=\"{anchor}\">{}</text>",
            escape(content)
        );
    }

    /// Straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{stroke}\" stroke-width=\"1\"/>"
        );
    }

    /// Line with an arrowhead marker (for path edges).
    pub fn arrow(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{stroke}\" stroke-width=\"1\" marker-end=\"url(#arrow)\"/>"
        );
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            concat!(
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
                "viewBox=\"0 0 {w} {h}\">\n",
                "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" ",
                "markerWidth=\"6\" markerHeight=\"6\" orient=\"auto-start-reverse\">",
                "<path d=\"M 0 0 L 10 5 L 0 10 z\"/></marker></defs>\n",
                "{body}</svg>\n"
            ),
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100, 50);
        doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", Some("#000"));
        doc.text(5.0, 5.0, 8.0, "middle", "A&B");
        doc.line(0.0, 0.0, 100.0, 50.0, "#333");
        doc.arrow(0.0, 0.0, 50.0, 25.0, "#333");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("A&amp;B"));
        assert!(svg.contains("marker-end"));
        assert!(svg.contains("width=\"100\""));
    }
}

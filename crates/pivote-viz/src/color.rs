//! The seven-level heat palette (paper: "the darker the color, the
//! stronger the semantic correlation").

/// Hex colors for levels 0..=6, light to dark (single-hue blue ramp).
pub const HEAT_PALETTE: [&str; 7] = [
    "#f7fbff", // 0: none
    "#deebf7", // 1
    "#c6dbef", // 2
    "#9ecae1", // 3
    "#6baed6", // 4
    "#3182bd", // 5
    "#08519c", // 6: strongest
];

/// ASCII glyphs for levels 0..=6, light to dark.
pub const HEAT_GLYPHS: [char; 7] = [' ', '.', ':', '-', '=', '#', '@'];

/// Color for a level (clamped).
pub fn heat_color(level: u8) -> &'static str {
    HEAT_PALETTE[(level as usize).min(6)]
}

/// Glyph for a level (clamped).
pub fn heat_glyph(level: u8) -> char {
    HEAT_GLYPHS[(level as usize).min(6)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_has_seven_distinct_levels() {
        let mut colors = HEAT_PALETTE.to_vec();
        colors.sort_unstable();
        colors.dedup();
        assert_eq!(colors.len(), 7);
        let mut glyphs = HEAT_GLYPHS.to_vec();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), 7);
    }

    #[test]
    fn out_of_range_levels_clamp() {
        assert_eq!(heat_color(200), HEAT_PALETTE[6]);
        assert_eq!(heat_glyph(9), HEAT_GLYPHS[6]);
        assert_eq!(heat_glyph(0), ' ');
    }
}

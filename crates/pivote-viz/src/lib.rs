//! # pivote-viz — renderers for the PivotE reproduction
//!
//! The paper's figures, regenerated from live data structures:
//!
//! - [`heatmap`]: the seven-level entity × feature heat map (Fig. 3-f) as
//!   ASCII and SVG;
//! - [`matrix`]: the full interface screen (Fig. 3) as a terminal panel,
//!   plus TSV dumps for machine-diffable artifacts;
//! - [`pathviz`]: the exploratory path (Fig. 4) as ASCII, Graphviz DOT
//!   and SVG;
//! - [`typeview`]: the entity-type coupling view (Fig. 1-b) as ASCII and
//!   SVG;
//! - [`svg`], [`color`]: the small shared rendering substrate.

#![warn(missing_docs)]

pub mod color;
pub mod heatmap;
pub mod matrix;
pub mod pathviz;
pub mod svg;
pub mod typeview;

pub use color::{heat_color, heat_glyph, HEAT_GLYPHS, HEAT_PALETTE};
pub use heatmap::{heatmap_ascii, heatmap_html, heatmap_svg};
pub use matrix::{heatmap_tsv, render_view};
pub use pathviz::{path_ascii, path_dot, path_svg};
pub use svg::SvgDoc;
pub use typeview::{typeview_ascii, typeview_svg};

//! Exploratory-path rendering (Fig. 4): ASCII trail, Graphviz DOT and
//! SVG.

use crate::svg::{escape, SvgDoc};
use pivote_explore::{ExplorationPath, NodeKind};
use std::fmt::Write as _;

/// Render the path as an indented ASCII trail: the main query sequence
/// with lookup branches.
pub fn path_ascii(path: &ExplorationPath) -> String {
    let mut out = String::new();
    for node in path.nodes() {
        match node.kind {
            NodeKind::Query => {
                let marker = if path.current() == Some(node.id) {
                    "●"
                } else {
                    "○"
                };
                let incoming = path
                    .edges()
                    .iter()
                    .filter(|e| e.to == node.id)
                    .map(|e| e.action.as_str())
                    .next()
                    .unwrap_or("start");
                let _ = writeln!(out, "{marker} [{incoming}] {}", node.label);
            }
            NodeKind::Entity => {
                let _ = writeln!(out, "  └─(lookup) {}", node.label);
            }
        }
    }
    out
}

/// Render the path as Graphviz DOT.
pub fn path_dot(path: &ExplorationPath) -> String {
    let mut out = String::from("digraph exploration {\n  rankdir=LR;\n");
    for node in path.nodes() {
        let shape = match node.kind {
            NodeKind::Query => "box",
            NodeKind::Entity => "ellipse",
        };
        let _ = writeln!(
            out,
            "  n{} [shape={shape} label=\"{}\"];",
            node.id,
            node.label.replace('"', "'")
        );
    }
    for edge in path.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            edge.from, edge.to, edge.action
        );
    }
    out.push_str("}\n");
    out
}

/// Render the path as a horizontal SVG node-link diagram.
pub fn path_svg(path: &ExplorationPath) -> String {
    const BOX_W: f64 = 170.0;
    const BOX_H: f64 = 34.0;
    const GAP_X: f64 = 60.0;
    const ROW_QUERY: f64 = 40.0;
    const ROW_ENTITY: f64 = 120.0;
    let n = path.nodes().len().max(1) as f64;
    let width = 20.0 + n * (BOX_W + GAP_X);
    let mut doc = SvgDoc::new(width.ceil() as u32, 200);

    // deterministic x by node id, y by kind
    let pos = |id: usize| -> (f64, f64) {
        let node = &path.nodes()[id];
        let x = 10.0 + id as f64 * (BOX_W + GAP_X);
        let y = match node.kind {
            NodeKind::Query => ROW_QUERY,
            NodeKind::Entity => ROW_ENTITY,
        };
        (x, y)
    };
    for edge in path.edges() {
        let (x1, y1) = pos(edge.from);
        let (x2, y2) = pos(edge.to);
        doc.arrow(
            x1 + BOX_W,
            y1 + BOX_H / 2.0,
            x2,
            y2 + BOX_H / 2.0,
            "#555555",
        );
        doc.text(
            (x1 + BOX_W + x2) / 2.0,
            (y1 + y2) / 2.0 + BOX_H / 2.0 - 6.0,
            8.0,
            "middle",
            &edge.action,
        );
    }
    for node in path.nodes() {
        let (x, y) = pos(node.id);
        let fill = match node.kind {
            NodeKind::Query => "#eef5ff",
            NodeKind::Entity => "#fff7e6",
        };
        doc.rect(x, y, BOX_W, BOX_H, fill, Some("#333333"));
        let mut label = node.label.clone();
        if label.chars().count() > 26 {
            label = label.chars().take(25).collect();
            label.push('…');
        }
        doc.text(
            x + BOX_W / 2.0,
            y + BOX_H / 2.0 + 3.0,
            8.5,
            "middle",
            &label,
        );
    }
    let _ = escape; // escape handled inside SvgDoc::text
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_path() -> ExplorationPath {
        let mut p = ExplorationPath::new();
        p.advance(
            NodeKind::Query,
            "keywords: \"forrest gump\"",
            Some(0),
            "search",
        );
        p.advance(
            NodeKind::Query,
            "seeds: Forrest Gump",
            Some(1),
            "investigate",
        );
        p.branch(NodeKind::Entity, "Tom Hanks", "lookup");
        p.advance(
            NodeKind::Query,
            "features: Tom_Hanks:starring",
            Some(2),
            "pivot",
        );
        p
    }

    #[test]
    fn ascii_trail_marks_current_and_branches() {
        let text = path_ascii(&sample_path());
        assert!(text.contains("● [pivot]"), "{text}");
        assert!(text.contains("○ [start]"), "{text}");
        assert!(text.contains("└─(lookup) Tom Hanks"), "{text}");
    }

    #[test]
    fn dot_lists_all_nodes_and_edges() {
        let p = sample_path();
        let dot = path_dot(&p);
        assert_eq!(dot.matches("shape=box").count(), 3);
        assert_eq!(dot.matches("shape=ellipse").count(), 1);
        assert_eq!(dot.matches("->").count(), p.edges().len());
        assert!(dot.contains("label=\"pivot\""));
    }

    #[test]
    fn svg_draws_every_node() {
        let p = sample_path();
        let svg = path_svg(&p);
        assert_eq!(svg.matches("<rect").count(), p.nodes().len());
        assert!(svg.contains("marker-end"));
    }

    #[test]
    fn empty_path_renders() {
        let p = ExplorationPath::new();
        assert_eq!(path_ascii(&p), "");
        assert!(path_dot(&p).contains("digraph"));
        assert!(path_svg(&p).contains("</svg>"));
    }
}

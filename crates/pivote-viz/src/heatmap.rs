//! Heat-map rendering (Fig. 3-f): ASCII for terminals, SVG for
//! documents.

use crate::color::{heat_color, heat_glyph};
use crate::svg::SvgDoc;
use pivote_core::HeatMap;
use pivote_kg::KnowledgeGraph;
use std::fmt::Write as _;

/// Render the heat map as ASCII: one row per feature, one column per
/// entity, with a legend of both axes.
pub fn heatmap_ascii(kg: &KnowledgeGraph, hm: &HeatMap, max_label: usize) -> String {
    let mut out = String::new();
    // column header: entity indices
    let _ = write!(out, "{:<width$} ", "", width = max_label);
    for (i, _) in hm.entities.iter().enumerate() {
        let _ = write!(out, "{}", (b'a' + (i % 26) as u8) as char);
    }
    out.push('\n');
    for (row, rf) in hm.features.iter().enumerate() {
        // char-based truncation: labels can hold multi-byte chars (the
        // `→` direction marker), where a byte-indexed truncate panics
        let mut label = rf.feature.display(kg);
        if label.chars().count() > max_label {
            label = label.chars().take(max_label.saturating_sub(1)).collect();
            label.push('…');
        }
        let _ = write!(out, "{label:<max_label$} ");
        for col in 0..hm.width() {
            out.push(heat_glyph(hm.level(row, col)));
        }
        out.push('\n');
    }
    // entity legend
    out.push('\n');
    for (i, &e) in hm.entities.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {} = {}",
            (b'a' + (i % 26) as u8) as char,
            kg.display_name(e)
        );
    }
    out
}

/// Render the heat map as an SVG grid with axis labels.
pub fn heatmap_svg(kg: &KnowledgeGraph, hm: &HeatMap) -> String {
    const CELL: f64 = 16.0;
    const LEFT: f64 = 230.0;
    const TOP: f64 = 120.0;
    let width = LEFT + hm.width() as f64 * CELL + 20.0;
    let height = TOP + hm.height() as f64 * CELL + 20.0;
    let mut doc = SvgDoc::new(width.ceil() as u32, height.ceil() as u32);
    for (col, &e) in hm.entities.iter().enumerate() {
        let x = LEFT + col as f64 * CELL + CELL / 2.0;
        doc.text(x, TOP - 6.0, 7.0, "start", &kg.display_name(e));
    }
    for (row, rf) in hm.features.iter().enumerate() {
        let y = TOP + row as f64 * CELL + CELL * 0.65;
        doc.text(LEFT - 6.0, y, 9.0, "end", &rf.feature.display(kg));
        for col in 0..hm.width() {
            let x = LEFT + col as f64 * CELL;
            doc.rect(
                x,
                TOP + row as f64 * CELL,
                CELL,
                CELL,
                heat_color(hm.level(row, col)),
                Some("#cccccc"),
            );
        }
    }
    doc.finish()
}

/// Render the heat map as a self-contained HTML page: a table whose cells
/// carry the seven-level palette, with hoverable raw values — the closest
/// static analogue of the demo's interactive explanation area.
pub fn heatmap_html(kg: &KnowledgeGraph, hm: &HeatMap) -> String {
    use crate::svg::escape;
    let mut out = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>PivotE heat map (Fig. 3-f)</title>\n<style>\n\
         body{font-family:monospace}\n\
         table{border-collapse:collapse}\n\
         td,th{border:1px solid #ccc;padding:3px 6px;font-size:12px}\n\
         th.col{writing-mode:vertical-rl;transform:rotate(180deg);max-height:160px}\n\
         </style></head><body>\n<h1>entity × semantic-feature correlation</h1>\n<table>\n<tr><th></th>",
    );
    for &e in &hm.entities {
        let _ = write!(
            out,
            "<th class=\"col\">{}</th>",
            escape(&kg.display_name(e))
        );
    }
    out.push_str("</tr>\n");
    for (row, rf) in hm.features.iter().enumerate() {
        let _ = write!(out, "<tr><th>{}</th>", escape(&rf.feature.display(kg)));
        for col in 0..hm.width() {
            let level = hm.level(row, col);
            let _ = write!(
                out,
                "<td style=\"background:{}\" title=\"level {} value {:.5}\">{}</td>",
                heat_color(level),
                level,
                hm.value(row, col),
                level
            );
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_core::{Expander, HeatMap, RankingConfig, SfQuery};
    use pivote_kg::{generate, DatagenConfig};

    fn heatmap() -> (pivote_kg::KnowledgeGraph, HeatMap) {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        let seed = kg.type_extent(film)[0];
        let ex = Expander::new(&kg, RankingConfig::default());
        let res = ex.expand(&SfQuery::from_seeds(vec![seed]), 6, 5);
        let entities: Vec<_> = res.entities.iter().map(|re| re.entity).collect();
        let hm = HeatMap::compute(ex.ranker(), &entities, &res.features);
        (kg, hm)
    }

    #[test]
    fn ascii_has_one_row_per_feature_plus_legend() {
        let (kg, hm) = heatmap();
        let text = heatmap_ascii(&kg, &hm, 30);
        let grid_rows = text.lines().take_while(|l| !l.is_empty()).count();
        assert_eq!(grid_rows, hm.height() + 1); // header + rows
                                                // legend lists every entity
        for &e in &hm.entities {
            assert!(text.contains(&kg.display_name(e)));
        }
    }

    #[test]
    fn ascii_truncates_long_labels() {
        let (kg, hm) = heatmap();
        let text = heatmap_ascii(&kg, &hm, 8);
        assert!(text
            .lines()
            .skip(1)
            .take(hm.height())
            .all(|l| !l.is_empty()));
    }

    #[test]
    fn html_has_one_cell_per_matrix_entry() {
        let (kg, hm) = heatmap();
        let html = heatmap_html(&kg, &hm);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert_eq!(html.matches("<td").count(), hm.width() * hm.height());
        assert_eq!(html.matches("<tr>").count(), hm.height() + 1);
        for &e in &hm.entities {
            assert!(html.contains(&kg.display_name(e)));
        }
    }

    #[test]
    fn svg_contains_a_rect_per_cell() {
        let (kg, hm) = heatmap();
        let svg = heatmap_svg(&kg, &hm);
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, hm.width() * hm.height());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn truncation_is_char_boundary_safe() {
        // FromAnchor labels end in the multi-byte `→`; every truncation
        // width must cut on a char boundary (this used to panic when the
        // cut landed inside the arrow). Actor seeds surface FromAnchor
        // features.
        let kg = generate(&DatagenConfig::tiny());
        let actor = kg.type_id("Actor").unwrap();
        let seed = kg.type_extent(actor)[0];
        let ex = Expander::new(&kg, RankingConfig::default());
        let res = ex.expand(&SfQuery::from_seeds(vec![seed]), 6, 5);
        let entities: Vec<_> = res.entities.iter().map(|re| re.entity).collect();
        let hm = HeatMap::compute(ex.ranker(), &entities, &res.features);
        assert!(
            hm.features
                .iter()
                .any(|rf| !rf.feature.display(&kg).is_ascii()),
            "fixture should include a multi-byte label"
        );
        for width in 1..40 {
            let text = heatmap_ascii(&kg, &hm, width);
            assert!(!text.is_empty());
        }
    }
}

//! The full matrix workspace rendering (Fig. 3): the entity x-axis, the
//! feature y-axis, scores, and the embedded heat map — the text analogue
//! of the PivotE main screen.

use crate::heatmap::heatmap_ascii;
use pivote_core::HeatMap;
use pivote_explore::ViewState;
use pivote_kg::KnowledgeGraph;
use std::fmt::Write as _;

/// Render a session view as a terminal screen: query area, entity
/// recommendations, feature recommendations, heat map, and (if present)
/// the focused entity profile.
pub fn render_view(kg: &KnowledgeGraph, view: &ViewState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "┌─ query ─────────────────────────────────────────");
    let _ = writeln!(out, "│ {}", view.query.summary(kg));
    let _ = writeln!(out, "├─ entities (Fig 3-c) ────────────────────────────");
    for (i, re) in view.entities.iter().enumerate() {
        let _ = writeln!(
            out,
            "│ {:>2}. {:<38} {:.4}",
            i + 1,
            kg.display_name(re.entity),
            re.score
        );
    }
    let _ = writeln!(out, "├─ semantic features (Fig 3-e) ───────────────────");
    for (i, rf) in view.features.iter().enumerate() {
        let _ = writeln!(
            out,
            "│ {:>2}. {:<38} {:.5}",
            i + 1,
            rf.feature.display(kg),
            rf.score
        );
    }
    let _ = writeln!(out, "├─ heat map (Fig 3-f) ────────────────────────────");
    for line in heatmap_ascii(kg, &view.heatmap, 34).lines() {
        let _ = writeln!(out, "│ {line}");
    }
    if let Some(profile) = &view.focus {
        let _ = writeln!(out, "├─ entity presentation (Fig 3-d) ─────────────────");
        for line in profile.render().lines() {
            let _ = writeln!(out, "│ {line}");
        }
    }
    let _ = writeln!(out, "└─────────────────────────────────────────────────");
    out
}

/// Compact one-line-per-cell dump of the heat map for machine-diffable
/// artifacts: `feature<TAB>entity<TAB>level<TAB>value`.
pub fn heatmap_tsv(kg: &KnowledgeGraph, hm: &HeatMap) -> String {
    let mut out = String::from("feature\tentity\tlevel\tvalue\n");
    for (row, rf) in hm.features.iter().enumerate() {
        for (col, &e) in hm.entities.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{:.6}",
                rf.feature.display(kg),
                kg.entity_name(e),
                hm.level(row, col),
                hm.value(row, col)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivote_explore::Session;
    use pivote_kg::{generate, DatagenConfig};

    #[test]
    fn render_view_shows_all_areas() {
        let kg = generate(&DatagenConfig::tiny());
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        let f = kg.type_extent(film)[0];
        s.click_entity(f);
        s.lookup(s.view().entities[0].entity);
        let screen = render_view(&kg, s.view());
        for area in [
            "query",
            "entities (Fig 3-c)",
            "semantic features (Fig 3-e)",
            "heat map (Fig 3-f)",
            "entity presentation (Fig 3-d)",
        ] {
            assert!(screen.contains(area), "missing {area}");
        }
    }

    #[test]
    fn tsv_has_header_plus_cells() {
        let kg = generate(&DatagenConfig::tiny());
        let mut s = Session::with_defaults(&kg);
        let film = kg.type_id("Film").unwrap();
        s.click_entity(kg.type_extent(film)[0]);
        let hm = &s.view().heatmap;
        let tsv = heatmap_tsv(&kg, hm);
        assert_eq!(tsv.lines().count(), 1 + hm.width() * hm.height());
        assert!(tsv.starts_with("feature\tentity\tlevel\tvalue"));
    }
}

//! The bundled `data/sample.nt` — the paper's actual running example —
//! loaded through the N-Triples path and explored end to end, including
//! the Fig. 1 caption's claim verbatim: `Tom_Hanks:starring` reveals
//! Forrest Gump's co-filmography.

use pivote::prelude::*;
use pivote_core::explain_pair;

fn sample() -> KnowledgeGraph {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    pivote_kg::parse(&nt).expect("sample parses")
}

#[test]
fn sample_loads_with_paper_entities() {
    let kg = sample();
    let gump = kg.entity("Forrest_Gump").expect("Forrest_Gump");
    assert_eq!(kg.label(gump), Some("Forrest Gump"));
    assert_eq!(
        kg.aliases(gump),
        &["Geenbow".to_owned(), "Gumpian".to_owned()]
    );
    assert!(kg.type_id("Film").is_some());
    assert!(kg.category_id("American films").is_some());
}

#[test]
fn tom_hanks_starring_extent_matches_fig1() {
    let kg = sample();
    let hanks = kg.entity("Tom_Hanks").unwrap();
    let starring = kg.predicate("starring").unwrap();
    let sf = SemanticFeature::to_anchor(hanks, starring);
    let films: Vec<&str> = sf.extent(&kg).iter().map(|&e| kg.entity_name(e)).collect();
    assert_eq!(films.len(), 3);
    for f in ["Forrest_Gump", "Apollo_13_(film)", "Cast_Away"] {
        assert!(films.contains(&f), "missing {f}");
    }
}

#[test]
fn paper_explanation_example_verbatim() {
    // §3.2: "the semantic correlation between Forrest_Gump and
    // Apollo_13_(film) is that both of them are performed by Tom_Hanks
    // and Gary_Sinise".
    let kg = sample();
    let expander = Expander::new(&kg, RankingConfig::default());
    let gump = kg.entity("Forrest_Gump").unwrap();
    let apollo = kg.entity("Apollo_13_(film)").unwrap();
    let exp = explain_pair(expander.ranker(), gump, apollo, 5);
    let anchors: Vec<&str> = exp
        .shared
        .iter()
        .map(|(sf, _)| kg.entity_name(sf.anchor))
        .collect();
    assert!(anchors.contains(&"Tom_Hanks"), "{anchors:?}");
    assert!(anchors.contains(&"Gary_Sinise"), "{anchors:?}");
}

#[test]
fn find_films_starring_tom_hanks_three_ways() {
    let kg = sample();
    let hanks = kg.entity("Tom_Hanks").unwrap();
    let starring = kg.predicate("starring").unwrap();

    // 1. the exploratory way: a required semantic feature
    let expander = Expander::new(&kg, RankingConfig::default());
    let sf = SemanticFeature::to_anchor(hanks, starring);
    let via_feature: Vec<EntityId> = expander
        .expand(&SfQuery::from_features(vec![sf]), 10, 5)
        .entities
        .iter()
        .map(|re| re.entity)
        .collect();

    // 2. the structured way: SPARQL
    let rs =
        pivote_sparql::query(&kg, "SELECT ?f WHERE { ?f dbo:starring dbr:Tom_Hanks }").unwrap();
    let via_sparql: Vec<EntityId> = rs
        .rows
        .iter()
        .filter_map(|row| match &row[0] {
            Some(pivote_sparql::Value::Entity(e)) => Some(*e),
            _ => None,
        })
        .collect();

    // 3. the raw extent
    let extent = kg.subjects(hanks, starring).to_vec();

    let mut a = via_feature.clone();
    let mut b = via_sparql.clone();
    let mut c = extent.clone();
    a.sort_unstable();
    b.sort_unstable();
    c.sort_unstable();
    assert_eq!(a, c, "feature query disagrees with extent");
    assert_eq!(b, c, "SPARQL disagrees with extent");
}

#[test]
fn keyword_search_finds_gump_by_misspelling() {
    let kg = sample();
    let engine = SearchEngine::with_defaults(&kg);
    let hits = engine.search("geenbow", 5);
    assert_eq!(
        hits.first().map(|h| h.entity),
        kg.entity("Forrest_Gump"),
        "the similar-entity-names field should catch the paper's misspelling"
    );
}

#[test]
fn investigation_on_sample_recommends_apollo_over_cast_away() {
    // Apollo 13 shares two cast members with Forrest Gump, Cast Away one
    // — the heat-map example of §3.2 implies this ordering.
    let kg = sample();
    let expander = Expander::new(&kg, RankingConfig::default());
    let gump = kg.entity("Forrest_Gump").unwrap();
    let res = expander.expand(&SfQuery::from_seeds(vec![gump]), 10, 10);
    let order: Vec<&str> = res
        .entities
        .iter()
        .map(|re| kg.entity_name(re.entity))
        .collect();
    let apollo = order.iter().position(|&n| n == "Apollo_13_(film)");
    let cast_away = order.iter().position(|&n| n == "Cast_Away");
    assert!(apollo.is_some(), "{order:?}");
    assert!(
        apollo < cast_away || cast_away.is_none(),
        "Apollo 13 should rank above Cast Away: {order:?}"
    );
}

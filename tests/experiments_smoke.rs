//! Small-scale versions of the quality experiments (Q1/Q2/Q4/Q5): the
//! *shape* the paper claims must hold — the semantic-feature model wins,
//! the multi-field representation helps, pivots land in coupled domains.

use pivote::prelude::*;
use pivote_baselines::{
    EntityExpansion, FreqOverlapExpansion, JaccardExpansion, PivotEExpansion, PprExpansion,
};
use pivote_eval::{
    default_search_cases, run_ese_eval, run_heatmap_report, run_pivot_eval, run_search_eval,
    EseEvalConfig, SearchVariant,
};
use pivote_search::{Field, FieldWeights};

fn kg() -> KnowledgeGraph {
    // the construction seam: under PIVOTE_INCREMENTAL=1 the experiment
    // graph is built through the append path (base + delta splice), and
    // every quality claim below must hold unchanged
    pivote_eval::eval_graph(&DatagenConfig::small())
}

#[test]
fn q1_pivote_wins_map_against_all_baselines() {
    let kg = kg();
    let pivote = PivotEExpansion::default();
    let jaccard = JaccardExpansion;
    let ppr = PprExpansion::default();
    let freq = FreqOverlapExpansion;
    let methods: Vec<&dyn EntityExpansion> = vec![&pivote, &jaccard, &ppr, &freq];
    let cfg = EseEvalConfig {
        seed_sizes: vec![2],
        max_classes: 6,
        trials_per_class: 2,
        ..EseEvalConfig::default()
    };
    let results = run_ese_eval(&kg, &methods, &cfg);
    let map_of = |name: &str| {
        results
            .iter()
            .find(|r| r.method == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .map
    };
    let pivote_map = map_of("pivote");
    for baseline in ["jaccard", "ppr", "freq-overlap"] {
        assert!(
            pivote_map > map_of(baseline),
            "pivote MAP {pivote_map:.4} <= {baseline} MAP {:.4}",
            map_of(baseline)
        );
    }
}

#[test]
fn a1_error_tolerance_helps_and_a2_discriminability_is_not_catastrophic() {
    let kg = kg();
    let full = PivotEExpansion::default();
    let no_et = PivotEExpansion::without_error_tolerance();
    let no_d = PivotEExpansion::without_discriminability();
    let methods: Vec<&dyn EntityExpansion> = vec![&full, &no_et, &no_d];
    let cfg = EseEvalConfig {
        seed_sizes: vec![3],
        max_classes: 6,
        trials_per_class: 2,
        ..EseEvalConfig::default()
    };
    let results = run_ese_eval(&kg, &methods, &cfg);
    let map_of = |name: &str| results.iter().find(|r| r.method == name).unwrap().map;
    // A1: the error-tolerant estimate is the paper's key trick; dropping
    // it must hurt.
    assert!(
        map_of("pivote") > map_of("pivote-noet"),
        "error tolerance should help: full {} vs no-ET {}",
        map_of("pivote"),
        map_of("pivote-noet")
    );
    // A2: on the synthetic KG discriminability is a small effect — the
    // ablation must stay in the same ballpark (within 20% relative).
    assert!(
        (map_of("pivote") - map_of("pivote-nod")).abs() <= 0.2 * map_of("pivote").max(1e-9),
        "discriminability ablation moved MAP too far: full {} vs no-d {}",
        map_of("pivote"),
        map_of("pivote-nod")
    );
}

#[test]
fn q2_multifield_lm_beats_names_only_on_alias_queries() {
    let kg = kg();
    let full = SearchEngine::with_defaults(&kg);
    let names_only = {
        let mut cfg = SearchConfig::default();
        cfg.lm.weights = FieldWeights::single(Field::Names);
        SearchEngine::build(&kg, cfg)
    };
    let cases = default_search_cases(&kg, 40);
    let variants = [
        SearchVariant {
            name: "lm-mixture",
            engine: &full,
            scorer: Scorer::MixtureLm,
        },
        SearchVariant {
            name: "lm-names-only",
            engine: &names_only,
            scorer: Scorer::MixtureLm,
        },
    ];
    let results = run_search_eval(&variants, &cases, 50);
    let mrr = |scorer: &str, kind: &str| {
        results
            .iter()
            .find(|r| r.scorer == scorer && r.kind == kind)
            .map(|r| r.mrr)
            .unwrap_or(0.0)
    };
    // Aliases are only indexed in the "similar entity names" field, so the
    // five-field mixture must win there.
    assert!(
        mrr("lm-mixture", "alias") > mrr("lm-names-only", "alias"),
        "mixture {} <= names-only {} on alias queries",
        mrr("lm-mixture", "alias"),
        mrr("lm-names-only", "alias")
    );
    // And label queries must work well for the mixture.
    assert!(mrr("lm-mixture", "label") > 0.5);
}

#[test]
fn q4_darker_heatmap_levels_are_more_direct() {
    let kg = kg();
    let film = kg.type_id("Film").unwrap();
    let seeds = &kg.type_extent(film)[..2];
    let rep = run_heatmap_report(&kg, seeds, 15, 10);
    assert_eq!(rep.histogram.iter().sum::<usize>(), rep.dims.0 * rep.dims.1);
    // the strongest populated level must have a higher direct-match rate
    // than the weakest populated nonzero level
    let populated: Vec<usize> = (1..7).filter(|&l| rep.histogram[l] > 0).collect();
    if populated.len() >= 2 {
        let lo = populated[0];
        let hi = *populated.last().unwrap();
        assert!(
            rep.direct_fraction[hi] >= rep.direct_fraction[lo],
            "level {hi} direct {:.2} < level {lo} direct {:.2}",
            rep.direct_fraction[hi],
            rep.direct_fraction[lo]
        );
    }
}

#[test]
fn q5_pivots_from_every_major_domain_land_coupled() {
    let kg = kg();
    for name in ["Film", "Actor", "Director"] {
        let t = kg.type_id(name).unwrap();
        let rep = run_pivot_eval(&kg, t, 15);
        assert!(rep.attempted > 0, "{name}: no pivots attempted");
        assert!(
            rep.success_rate() > 0.8,
            "{name}: pivot success only {:.2}",
            rep.success_rate()
        );
    }
}

//! Golden-file regression test for the shard/merge layer.
//!
//! The paper's bundled running example (`data/sample.nt`) is ranked and
//! heat-mapped once; the exact output — feature ranking with full-
//! precision scores, entity ranking, quantized heat-map levels — is
//! checked into `tests/golden/sample_rankings.json`. Every backend
//! (single graph, and sharded at the counts from `PIVOTE_SHARDS`,
//! default 1–4) must reproduce the golden file **exactly**, so any drift
//! in the router, the id remap, the probability decomposition or the
//! top-k heap merge fails this test with a readable diff.
//!
//! Regenerate (after an *intentional* model change) with:
//! `PIVOTE_GOLDEN_WRITE=1 cargo test -q --test golden_sharded`

use pivote_core::{Expander, GraphHandle, HeatMap, RankingConfig, SfQuery};
use pivote_kg::{shard_counts_from_env, EntityId, KnowledgeGraph, ShardedGraph};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sample_rankings.json"
);

fn sample() -> KnowledgeGraph {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    pivote_kg::parse(&nt).expect("sample parses")
}

/// The golden snapshot: everything rendered with *names*, not ids, so the
/// file stays meaningful if dictionary order ever changes — and scores as
/// raw f64 (serde_json round-trips them exactly), because the sharded
/// layer's contract is bit-identity, not approximate equality.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    seeds: Vec<String>,
    features: Vec<(String, f64)>,
    entities: Vec<(String, f64)>,
    heatmap_levels: Vec<Vec<u8>>,
    heatmap_values: Vec<Vec<f64>>,
}

/// Rank the Fig. 1 query (seed = Forrest_Gump) and compute the heat map
/// on whichever backend `handle` wraps.
fn snapshot(handle: &GraphHandle<'_>) -> Golden {
    let gump = handle.entity("Forrest_Gump").expect("Forrest_Gump");
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(vec![gump]), 10, 10);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    Golden {
        seeds: vec![handle.entity_name(gump).to_owned()],
        features: res
            .features
            .iter()
            .map(|rf| (handle.feature_display(rf.feature), rf.score))
            .collect(),
        entities: res
            .entities
            .iter()
            .map(|re| (handle.entity_name(re.entity).to_owned(), re.score))
            .collect(),
        heatmap_levels: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.level(row, col)).collect())
            .collect(),
        heatmap_values: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.value(row, col)).collect())
            .collect(),
    }
}

#[test]
fn golden_sample_rankings_reproduce_on_every_backend() {
    let kg = sample();
    let single = snapshot(&GraphHandle::single_with_threads(&kg, 1));

    if std::env::var("PIVOTE_GOLDEN_WRITE").is_ok() {
        std::fs::write(
            GOLDEN_PATH,
            serde_json::to_string_pretty(&single).expect("golden serializes"),
        )
        .expect("golden written");
    }

    let golden_json = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists — regenerate with PIVOTE_GOLDEN_WRITE=1");
    let golden: Golden = serde_json::from_str(&golden_json).expect("golden parses");

    assert_eq!(
        single, golden,
        "single-graph backend drifted from the golden rankings"
    );

    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let sg = ShardedGraph::from_graph(&kg, shards);
        for threads in [1, 2] {
            let got = snapshot(&GraphHandle::sharded_with_threads(&sg, threads));
            assert_eq!(
                got, golden,
                "sharded backend (shards={shards}, threads={threads}) \
                 drifted from the golden rankings"
            );
        }
    }
}

const SEARCH_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sample_search.json"
);

/// Golden snapshot of keyword-search rankings: per query, the top hits
/// as `(entity name, full-precision score)`. Sharded search merges
/// per-shard hits scored against globally-merged corpus statistics, so
/// its contract is the same as the ranking layer's: bit-identity.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct SearchGolden {
    queries: Vec<(String, Vec<(String, f64)>)>,
}

fn search_snapshot(handle: &GraphHandle<'_>) -> SearchGolden {
    use pivote_explore::{Session, SessionConfig};
    let session = Session::with_handle(handle.clone(), SessionConfig::default());
    let queries = ["forrest gump", "tom hanks", "film", "american hollywood"];
    SearchGolden {
        queries: queries
            .iter()
            .map(|q| {
                let hits = session
                    .search_hits(q, 10)
                    .iter()
                    .map(|h| (handle.entity_name(h.entity).to_owned(), h.score))
                    .collect();
                ((*q).to_owned(), hits)
            })
            .collect(),
    }
}

#[test]
fn golden_search_rankings_reproduce_on_every_backend() {
    let kg = sample();
    let single = search_snapshot(&GraphHandle::single_with_threads(&kg, 1));

    if std::env::var("PIVOTE_GOLDEN_WRITE").is_ok() {
        std::fs::write(
            SEARCH_GOLDEN_PATH,
            serde_json::to_string_pretty(&single).expect("search golden serializes"),
        )
        .expect("search golden written");
    }

    let golden_json = std::fs::read_to_string(SEARCH_GOLDEN_PATH)
        .expect("search golden exists — regenerate with PIVOTE_GOLDEN_WRITE=1");
    let golden: SearchGolden = serde_json::from_str(&golden_json).expect("search golden parses");
    assert!(
        golden.queries.iter().all(|(_, hits)| !hits.is_empty()),
        "every golden query must have hits"
    );
    assert_eq!(
        single, golden,
        "single-graph search drifted from the golden rankings"
    );

    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let sg = ShardedGraph::from_graph(&kg, shards);
        let got = search_snapshot(&GraphHandle::sharded(&sg));
        assert_eq!(
            got, golden,
            "sharded search (shards={shards}) drifted from the golden rankings"
        );
    }
}

#[test]
fn golden_file_is_checked_in_and_nonempty() {
    if std::env::var("PIVOTE_GOLDEN_WRITE").is_ok() {
        // regeneration mode: the sibling test may still be writing
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file is committed");
    let parsed: Golden = serde_json::from_str(&golden).expect("golden parses");
    assert!(!parsed.features.is_empty(), "golden must rank features");
    assert!(!parsed.entities.is_empty(), "golden must rank entities");
    assert_eq!(parsed.heatmap_levels.len(), parsed.features.len());
}

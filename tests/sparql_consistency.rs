//! Cross-engine consistency: the SPARQL BGP engine, the semantic-feature
//! extents and the expansion engine must agree on the generated KG —
//! three independent code paths answering the same questions.

use pivote::prelude::*;
use pivote_sparql::Value;

fn kg() -> KnowledgeGraph {
    generate(&DatagenConfig::small())
}

fn entities_of(rs: &pivote_sparql::ResultSet, col: usize) -> Vec<EntityId> {
    let mut out: Vec<EntityId> = rs
        .rows
        .iter()
        .filter_map(|row| match &row[col] {
            Some(Value::Entity(e)) => Some(*e),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[test]
fn starring_pattern_equals_feature_extent() {
    let kg = kg();
    let starring = kg.predicate("starring").unwrap();
    let actor = kg.type_id("Actor").unwrap();
    let popular = *kg
        .type_extent(actor)
        .iter()
        .max_by_key(|&&a| kg.subjects(a, starring).len())
        .unwrap();

    let sparql = format!(
        "SELECT DISTINCT ?f WHERE {{ ?f dbo:starring dbr:{} }}",
        kg.entity_name(popular)
    );
    let rs = pivote_sparql::query(&kg, &sparql).unwrap();
    let via_sparql = entities_of(&rs, 0);

    let sf = SemanticFeature::to_anchor(popular, starring);
    let extent = sf.extent(&kg).to_vec();
    assert_eq!(via_sparql, extent);
}

#[test]
fn type_pattern_equals_type_extent() {
    let kg = kg();
    for type_name in ["Film", "Actor", "Director", "Book"] {
        let t = kg.type_id(type_name).unwrap();
        let rs = pivote_sparql::query(&kg, &format!("SELECT ?e WHERE {{ ?e a dbo:{type_name} }}"))
            .unwrap();
        assert_eq!(entities_of(&rs, 0), kg.type_extent(t), "{type_name}");
    }
}

#[test]
fn conjunctive_pattern_equals_feature_query() {
    let kg = kg();
    let starring = kg.predicate("starring").unwrap();
    let director_p = kg.predicate("director").unwrap();
    // find a film and derive its actor + director; the conjunction must
    // agree between SPARQL and the expansion engine's required features
    let film = kg.type_id("Film").unwrap();
    let f = kg.type_extent(film)[0];
    let a = kg.objects(f, starring)[0];
    let d = kg.objects(f, director_p)[0];

    let sparql = format!(
        "SELECT DISTINCT ?f WHERE {{ ?f dbo:starring dbr:{} . ?f dbo:director dbr:{} }}",
        kg.entity_name(a),
        kg.entity_name(d)
    );
    let via_sparql = entities_of(&pivote_sparql::query(&kg, &sparql).unwrap(), 0);

    let expander = Expander::new(&kg, RankingConfig::default());
    let q = SfQuery::from_features(vec![
        SemanticFeature::to_anchor(a, starring),
        SemanticFeature::to_anchor(d, director_p),
    ]);
    let mut via_expansion: Vec<EntityId> = expander
        .expand(&q, 1000, 0)
        .entities
        .iter()
        .map(|re| re.entity)
        .collect();
    via_expansion.sort_unstable();
    assert_eq!(via_sparql, via_expansion);
    assert!(via_sparql.contains(&f));
}

#[test]
fn category_pattern_equals_category_extent() {
    let kg = kg();
    // pick a populated category and query it as a dct:subject pattern
    let c = kg
        .category_ids()
        .max_by_key(|&c| kg.category_extent(c).len())
        .unwrap();
    let iri_name = kg.category_name(c).replace(' ', "_");
    let rs = pivote_sparql::query(
        &kg,
        &format!("SELECT ?e WHERE {{ ?e dct:subject dbr:Category:{iri_name} }}"),
    )
    .unwrap();
    assert_eq!(entities_of(&rs, 0), kg.category_extent(c));
}

#[test]
fn label_join_finds_entity_by_name() {
    let kg = kg();
    let film = kg.type_id("Film").unwrap();
    let f = kg.type_extent(film)[0];
    let label = kg.label(f).unwrap();
    let rs = pivote_sparql::query(
        &kg,
        &format!("SELECT ?e WHERE {{ ?e rdfs:label \"{label}\" . ?e a dbo:Film }}"),
    )
    .unwrap();
    assert!(entities_of(&rs, 0).contains(&f));
}

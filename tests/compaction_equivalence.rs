//! The compaction contract, property-tested: for **any** random base
//! graph and **any** random delta sequence, re-partitioning the grown
//! [`pivote_kg::ShardedGraph`] via `compact` — at any target shard count
//! 1–4 (`PIVOTE_SHARDS` honoured), at any point between the appends,
//! once or repeatedly — changes **no answer**: feature rankings, entity
//! rankings, heat maps and entity profiles stay bit-identical to a
//! from-scratch rebuild of the union, across worker threads 1–2, and the
//! live wrapper's cache migration keeps every surviving density exact.
//!
//! This is the regression net for the whole compaction path: the union
//! rebuild (`to_graph`), the fresh partition (`from_graph` invariants),
//! the generation stamping, and `LiveStore::compact_concurrent`'s
//! off-lock rebuild + validated swap with wholesale cache carry-over.
//! Any drift in any of them breaks exact score equality here.

use pivote_core::{Expander, GraphHandle, HeatMap, LiveStore, RankingConfig, SfQuery};
use pivote_explore::{build_profile, EntityProfile};
use pivote_kg::{shard_counts_from_env, DeltaBatch, EntityId, KgBuilder, Literal, ShardedGraph};
use proptest::prelude::*;

/// Base graph spec: edges over e0..e9 × p0..p3, categories c0..c2,
/// types t0..t1 (the `incremental_equivalence` shape).
type BaseSpec = (Vec<(u8, u8, u8)>, Vec<(u8, u8)>, Vec<(u8, u8)>);

/// Delta op spec `(kind, a, b, c)` decoded by [`build_delta`]. Entity
/// indexes run to 15 (e10..e15 are brand-new), predicate indexes to 5
/// (p4/p5 brand-new), type indexes to 2 (t2 brand-new), category indexes
/// to 3 (c3 brand-new).
type DeltaSpec = Vec<(u8, u8, u8, u8)>;

fn base_strategy() -> impl Strategy<Value = BaseSpec> {
    (
        proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..40),
        proptest::collection::vec((0u8..10, 0u8..3), 0..20),
        proptest::collection::vec((0u8..10, 0u8..2), 0..14),
    )
}

fn delta_strategy() -> impl Strategy<Value = DeltaSpec> {
    proptest::collection::vec((0u8..7, 0u8..16, 0u8..6, 0u8..16), 0..24)
}

fn base_builder(spec: &BaseSpec) -> KgBuilder {
    let (edges, cats, types) = spec;
    let mut b = KgBuilder::new();
    for i in 0..10u8 {
        b.entity(&format!("e{i}"));
    }
    for &(s, p, o) in edges {
        let s = b.entity(&format!("e{s}"));
        let p = b.predicate(&format!("p{p}"));
        let o = b.entity(&format!("e{o}"));
        b.triple(s, p, o);
    }
    for &(e, c) in cats {
        let e = b.entity(&format!("e{e}"));
        b.categorized(e, &format!("c{c}"));
    }
    for &(e, t) in types {
        let e = b.entity(&format!("e{e}"));
        b.typed(e, &format!("t{t}"));
    }
    b
}

fn build_delta(spec: &DeltaSpec) -> DeltaBatch {
    let mut d = DeltaBatch::new();
    for &(kind, a, b, c) in spec {
        let ea = format!("e{}", a % 16);
        match kind % 7 {
            0 => {
                d.triple(ea, format!("p{}", b % 6), format!("e{}", c % 16));
            }
            1 => {
                d.typed(ea, format!("t{}", b % 3));
            }
            2 => {
                d.categorized(ea, format!("c{}", b % 4));
            }
            3 => {
                d.label(ea, format!("L{c}"));
            }
            4 => {
                d.literal(ea, format!("lp{}", b % 2), Literal::integer(c as i64));
            }
            5 => {
                d.redirect(format!("Alias{b}{c}"), ea);
            }
            _ => {
                d.entity(ea);
            }
        }
    }
    d
}

/// Everything the interface would render for one query plus per-entity
/// profiles — the comparison payload.
struct Snapshot {
    features: Vec<(pivote_core::SemanticFeature, f64)>,
    entities: Vec<(EntityId, f64)>,
    heat_levels: Vec<u8>,
    heat_values: Vec<f64>,
    profiles: Vec<EntityProfile>,
}

fn snapshot(handle: &GraphHandle<'_>, seeds: &[EntityId], probes: &[EntityId]) -> Snapshot {
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 15, 10);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    let mut heat_levels = Vec::new();
    let mut heat_values = Vec::new();
    for row in 0..hm.height() {
        for col in 0..hm.width() {
            heat_levels.push(hm.level(row, col));
            heat_values.push(hm.value(row, col));
        }
    }
    Snapshot {
        features: res
            .features
            .iter()
            .map(|rf| (rf.feature, rf.score))
            .collect(),
        entities: res
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect(),
        heat_levels,
        heat_values,
        profiles: probes
            .iter()
            .map(|&e| build_profile(expander.ranker(), e, 8))
            .collect(),
    }
}

fn assert_snapshots_equal(got: &Snapshot, want: &Snapshot, what: &str) {
    assert_eq!(
        got.features.len(),
        want.features.len(),
        "{what}: feature count"
    );
    for (a, b) in got.features.iter().zip(&want.features) {
        assert_eq!(a.0, b.0, "{what}: feature order");
        assert!((a.1 - b.1).abs() == 0.0, "{what}: feature score");
    }
    assert_eq!(
        got.entities.len(),
        want.entities.len(),
        "{what}: entity count"
    );
    for (a, b) in got.entities.iter().zip(&want.entities) {
        assert_eq!(a.0, b.0, "{what}: entity order");
        assert!((a.1 - b.1).abs() == 0.0, "{what}: entity score");
    }
    assert_eq!(got.heat_levels, want.heat_levels, "{what}: heat levels");
    assert_eq!(got.heat_values.len(), want.heat_values.len());
    for (a, b) in got.heat_values.iter().zip(&want.heat_values) {
        assert!((a - b).abs() == 0.0, "{what}: heat value");
    }
    assert_eq!(got.profiles, want.profiles, "{what}: profiles");
}

/// Seeds + every brand-new entity a union actually holds, as probes.
fn probes_of(handle: &GraphHandle<'_>, seeds: &[EntityId]) -> Vec<EntityId> {
    seeds
        .iter()
        .copied()
        .chain((10..16u8).filter_map(|i| handle.entity(&format!("e{i}"))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_compact_preserves_every_answer(
        base in base_strategy(),
        d1 in delta_strategy(),
        d2 in delta_strategy(),
        seed_a in 0u8..10,
        seed_b in 0u8..10,
    ) {
        let delta1 = build_delta(&d1);
        let delta2 = build_delta(&d2);

        // ground truths: from-scratch rebuilds of the two unions
        let union1 = {
            let mut b = base_builder(&base);
            delta1.apply_to_builder(&mut b);
            b.finish()
        };
        let union2 = {
            let mut b = base_builder(&base);
            delta1.apply_to_builder(&mut b);
            delta2.apply_to_builder(&mut b);
            b.finish()
        };
        let seeds: Vec<EntityId> = {
            let mut s = vec![
                union1.entity(&format!("e{seed_a}")).unwrap(),
                union1.entity(&format!("e{seed_b}")).unwrap(),
            ];
            s.sort_unstable();
            s.dedup();
            s
        };
        let h1 = GraphHandle::single_with_threads(&union1, 1);
        let probes1 = probes_of(&h1, &seeds);
        let want1 = snapshot(&h1, &seeds, &probes1);
        let h2 = GraphHandle::single_with_threads(&union2, 1);
        let probes2 = probes_of(&h2, &seeds);
        let want2 = snapshot(&h2, &seeds, &probes2);

        for target in shard_counts_from_env(&[1, 2, 3, 4]) {
            // grow a 2-shard partition by delta1, then compact at the
            // first interleaving point
            let mut sg = ShardedGraph::from_graph(&base_builder(&base).finish(), 2);
            sg.apply(&delta1);
            let pre = snapshot(&GraphHandle::sharded_with_threads(&sg, 1), &seeds, &probes1);
            assert_snapshots_equal(&pre, &want1, &format!("pre-compact (target={target})"));

            let mut sg = sg.compact(target);
            prop_assert_eq!(sg.shard_count(), target);
            prop_assert_eq!(sg.trailing_shard_count(), 0);
            prop_assert_eq!(sg.generation(), 2, "apply + compact");
            for threads in [1usize, 2] {
                let got = snapshot(
                    &GraphHandle::sharded_with_threads(&sg, threads),
                    &seeds,
                    &probes1,
                );
                assert_snapshots_equal(
                    &got,
                    &want1,
                    &format!("post-compact (target={target}, threads={threads})"),
                );
            }

            // keep growing after the compaction, then query again
            sg.apply(&delta2);
            for threads in [1usize, 2] {
                let got = snapshot(
                    &GraphHandle::sharded_with_threads(&sg, threads),
                    &seeds,
                    &probes2,
                );
                assert_snapshots_equal(
                    &got,
                    &want2,
                    &format!("post-compact append (target={target}, threads={threads})"),
                );
            }

            // a second compaction to a different width is just as exact
            let target2 = target % 4 + 1;
            let sg = sg.compact(target2);
            prop_assert_eq!(sg.generation(), 4);
            let got = snapshot(&GraphHandle::sharded_with_threads(&sg, 1), &seeds, &probes2);
            assert_snapshots_equal(
                &got,
                &want2,
                &format!("re-compact (targets={target}->{target2})"),
            );
        }

        // the live wrapper: append → query (warm the shared cache) →
        // concurrent compaction (off-lock rebuild + validated swap) →
        // query — the migrated cache must keep every answer exact,
        // before and after more growth
        let target = shard_counts_from_env(&[1, 2, 3, 4])[0];
        let live = LiveStore::with_threads(
            ShardedGraph::from_graph(&base_builder(&base).finish(), 2),
            1,
        );
        live.append(&delta1).expect("store healthy");
        {
            let reader = live.read();
            let got = snapshot(&reader.handle(), &seeds, &probes1);
            assert_snapshots_equal(&got, &want1, "live pre-compact");
        }
        let warm = live.cache().cached_probability_count();
        let receipt = live.compact_concurrent(target).expect("store healthy");
        prop_assert_eq!(receipt.shards_after, target);
        prop_assert_eq!(
            live.cache().cached_probability_count(),
            warm,
            "compaction must not drop any surviving density"
        );
        {
            let reader = live.read();
            let got = snapshot(&reader.handle(), &seeds, &probes1);
            assert_snapshots_equal(&got, &want1, "live post-compact (warm cache)");
        }
        live.append(&delta2).expect("store healthy");
        {
            let reader = live.read();
            let got = snapshot(&reader.handle(), &seeds, &probes2);
            assert_snapshots_equal(&got, &want2, "live post-compact append");
        }
    }
}

//! The replication contract, property-tested: for **any** random base
//! graph and **any** random mixed insert/retract/compact script, a
//! follower tailing the leader's delta log is **fingerprint-equal** to
//! the leader at *every* synced generation — across shard counts 1–4
//! (`PIVOTE_SHARDS` honoured), across leader compactions, and across a
//! leader crash + recovery in the middle of the script. The follower
//! always runs the single layout while the leader may be sharded, so
//! every comparison also re-proves the cross-layout fingerprint
//! contract.
//!
//! Plus the failure-injection legs the log format must survive:
//!
//! - a torn tail record (a crash mid-`write`) is invisible to readers
//!   and truncated by the resuming writer — never a corrupt apply;
//! - a follower restarting mid-stream re-attaches with its sync cursor
//!   and skips records it already applied (replay is idempotent);
//! - a leader crashing *between* logging a batch and applying it leaves
//!   the log authoritative: recovery replays the logged-but-unapplied
//!   batch.

use pivote_core::{recover, LiveStore, ReplicaStore};
use pivote_kg::wal::WalEvent;
use pivote_kg::{
    read_records, shard_counts_from_env, DeltaBatch, GraphBackend, KgBuilder, KnowledgeGraph,
    Literal, ShardedGraph, WalWriter,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Base graph spec: edges over e0..e9 × p0..p3, categories c0..c2,
/// types t0..t1 (the same universe as `retraction_equivalence`).
type BaseSpec = (Vec<(u8, u8, u8)>, Vec<(u8, u8)>, Vec<(u8, u8)>);

/// Mixed op spec `(kind, a, b, c)` decoded by [`decode`]: kinds 0–6 are
/// inserts, kinds 7–13 their retract mirrors over the denser base
/// universe so random sequences frequently retract stored statements.
type MixedSpec = Vec<(u8, u8, u8, u8)>;

fn base_strategy() -> impl Strategy<Value = BaseSpec> {
    (
        proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..30),
        proptest::collection::vec((0u8..10, 0u8..3), 0..14),
        proptest::collection::vec((0u8..10, 0u8..2), 0..10),
    )
}

fn mixed_strategy() -> impl Strategy<Value = MixedSpec> {
    proptest::collection::vec((0u8..14, 0u8..16, 0u8..6, 0u8..16), 0..20)
}

fn base_graph(spec: &BaseSpec) -> KnowledgeGraph {
    let (edges, cats, types) = spec;
    let mut b = KgBuilder::new();
    let es: Vec<_> = (0..10).map(|i| b.entity(&format!("e{i}"))).collect();
    for &(s, p, o) in edges {
        let pi = b.predicate(&format!("p{p}"));
        b.triple(es[s as usize], pi, es[o as usize]);
    }
    for &(e, c) in cats {
        b.categorized(es[e as usize], &format!("c{c}"));
    }
    for &(e, t) in types {
        b.typed(es[e as usize], &format!("t{t}"));
    }
    b.finish()
}

/// Decode a mixed spec straight into a delta batch — the leader and the
/// shadow-free ground truth here are the *same* apply path, so the
/// statement-level semantics need no re-derivation.
fn decode(spec: &[(u8, u8, u8, u8)]) -> DeltaBatch {
    let mut d = DeltaBatch::new();
    for &(kind, a, b, c) in spec {
        let ea = format!("e{}", a % 16);
        let ra = format!("e{}", a % 10);
        match kind % 14 {
            0 => {
                d.triple(ea, format!("p{}", b % 6), format!("e{}", c % 16));
            }
            1 => {
                d.typed(ea, format!("t{}", b % 3));
            }
            2 => {
                d.categorized(ea, format!("c{}", b % 4));
            }
            3 => {
                d.label(ea, format!("L{c}"));
            }
            4 => {
                d.literal(ea, format!("lp{}", b % 2), Literal::integer(c as i64));
            }
            5 => {
                d.redirect(format!("Alias{b}{c}"), ea);
            }
            6 => {
                d.entity(ea);
            }
            7 => {
                d.retract_triple(ra, format!("p{}", b % 4), format!("e{}", c % 10));
            }
            8 => {
                d.retract_typed(ra, format!("t{}", b % 2));
            }
            9 => {
                d.retract_categorized(ra, format!("c{}", b % 3));
            }
            10 => {
                d.retract_label(ra, format!("L{c}"));
            }
            11 => {
                d.retract_literal(ra, format!("lp{}", b % 2), Literal::integer(c as i64));
            }
            12 => {
                d.retract_alias(format!("Alias{b}{c}"), ra);
            }
            _ => {
                d.retract_triple(ra.clone(), format!("p{}", b % 4), ra);
            }
        }
    }
    d
}

fn scratch_wal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pivote_replica_eq_{}_{:?}_{tag}.wal",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn leader_fingerprint(leader: &LiveStore) -> u64 {
    let reader = leader.read();
    reader.backend().fingerprint()
}

/// One leader action between follower syncs. Every variant appends at
/// most one log record, so the per-step comparison below really does
/// check **every** synced generation.
enum Step {
    Delta(DeltaBatch),
    Compact(usize),
    Restart,
}

fn run_script(shards: usize, base: &BaseSpec, steps: Vec<Step>, tag: &str) {
    let wal_path = scratch_wal(&format!("{tag}_{shards}"));
    let _ = std::fs::remove_file(&wal_path);

    let base_kg = base_graph(base);
    let backend: GraphBackend = if shards > 1 {
        ShardedGraph::from_graph(&base_kg, shards).into()
    } else {
        base_kg.clone().into()
    };

    let leader = Arc::new(LiveStore::with_threads(backend.clone(), 1));
    leader.log_to(&wal_path).expect("leader logs");
    let mut follower = ReplicaStore::open(base_kg, 1, &wal_path).expect("follower opens");

    drive(leader, &backend, &wal_path, steps, &mut follower, shards);
    let _ = std::fs::remove_file(&wal_path);
}

/// Apply `steps` to the leader one at a time, syncing the follower and
/// asserting fingerprint equality after every step.
fn drive(
    mut leader: Arc<LiveStore>,
    backend: &GraphBackend,
    wal_path: &PathBuf,
    steps: Vec<Step>,
    follower: &mut ReplicaStore,
    shards: usize,
) {
    for (i, step) in steps.into_iter().enumerate() {
        match step {
            Step::Delta(d) => {
                leader.append(&d).expect("leader append");
            }
            Step::Compact(target) => {
                leader.compact_in_place(target).expect("leader compact");
            }
            Step::Restart => {
                // leader crash: all that survives is the base snapshot
                // (here: the original backend) and the log
                drop(leader);
                let report = recover(backend.clone(), 1, wal_path).expect("leader recovers");
                assert!(!report.truncated_tail, "clean shutdown has no torn tail");
                let (writer, torn) = WalWriter::resume(wal_path).expect("log resumes");
                assert!(!torn);
                report.store.attach_wal(writer).expect("log re-attaches");
                leader = report.store;
            }
        }
        while follower.poll_step().expect("follower applies") {}
        let log_generation = leader.wal_generation().expect("leader keeps logging");
        assert_eq!(
            follower.synced_generation(),
            log_generation,
            "step {i}: follower must be caught up (shards={shards})"
        );
        let leader_fp = leader_fingerprint(&leader);
        let follower_fp = leader_fingerprint(follower.store());
        assert_eq!(
            follower_fp, leader_fp,
            "step {i}: follower diverged at generation {log_generation} (shards={shards})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_follower_fingerprint_equals_leader_at_every_synced_generation(
        base in base_strategy(),
        m1 in mixed_strategy(),
        m2 in mixed_strategy(),
        m3 in mixed_strategy(),
        compact_to in 1usize..3,
    ) {
        for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
            run_script(
                shards,
                &base,
                vec![
                    Step::Delta(decode(&m1)),
                    Step::Compact(compact_to),
                    Step::Delta(decode(&m2)),
                    Step::Restart,
                    Step::Delta(decode(&m3)),
                    Step::Compact(shards),
                ],
                "prop",
            );
        }
    }
}

/// The deterministic golden leg: a fixed script with inserts, retracts,
/// a compaction, and a mid-script leader restart, plus a sanity read of
/// the raw log (monotonic generations, batch payloads intact).
#[test]
fn golden_replication_script_is_exact() {
    let base: BaseSpec = (
        vec![(0, 0, 1), (1, 1, 2), (2, 0, 3), (3, 2, 4), (5, 3, 0)],
        vec![(0, 0), (1, 1), (2, 0)],
        vec![(0, 0), (1, 1)],
    );
    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let mut d1 = DeltaBatch::new();
        d1.triple("e0", "p0", "e10");
        d1.typed("e10", "t0");
        d1.literal("e10", "lp0", Literal::integer(7));
        let mut d2 = DeltaBatch::new();
        d2.retract_triple("e0", "p0", "e1");
        d2.retract_typed("e1", "t1");
        let mut d3 = DeltaBatch::new();
        d3.label("e10", "Ten");
        d3.redirect("TenAlias", "e10");
        run_script(
            shards,
            &base,
            vec![
                Step::Delta(d1),
                Step::Delta(d2),
                Step::Compact(2),
                Step::Restart,
                Step::Delta(d3),
            ],
            "golden",
        );
    }
}

#[test]
fn raw_log_records_are_versioned_and_monotonic() {
    let wal_path = scratch_wal("raw");
    let _ = std::fs::remove_file(&wal_path);
    let spec: BaseSpec = (vec![(0, 0, 1)], vec![], vec![]);
    let base = base_graph(&spec);
    let leader = LiveStore::with_threads(base.clone(), 1);
    let header = leader.log_to(&wal_path).expect("log");
    assert_eq!(header.base_generation, 0);
    assert_eq!(header.base_fingerprint, pivote_kg::fingerprint(&base));

    let mut d = DeltaBatch::new();
    d.triple("e0", "p1", "e2");
    leader.append(&d).expect("append");
    leader.append(&decode(&[(7, 0, 0, 1)])).expect("append");

    let (reread, records, torn) = read_records(&wal_path).expect("read back");
    assert_eq!(reread, header);
    assert!(!torn);
    assert_eq!(records.len(), 2);
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.generation, i as u64 + 1, "generations are 1-based");
        assert!(matches!(record.event, WalEvent::Delta(_)));
    }
    let WalEvent::Delta(batch) = &records[0].event else {
        unreachable!()
    };
    assert_eq!(
        batch, &d,
        "the logged batch is the applied batch, bit for bit"
    );
    let _ = std::fs::remove_file(&wal_path);
}

// ---------------------------------------------------------------------
// failure injection
// ---------------------------------------------------------------------

#[test]
fn torn_tail_record_is_invisible_to_readers_and_truncated_on_resume() {
    let wal_path = scratch_wal("torn");
    let _ = std::fs::remove_file(&wal_path);
    let spec: BaseSpec = (vec![(0, 0, 1), (1, 1, 2)], vec![(0, 0)], vec![]);
    let base = base_graph(&spec);
    let leader = LiveStore::with_threads(base.clone(), 1);
    leader.log_to(&wal_path).expect("log");
    let mut d = DeltaBatch::new();
    d.triple("e0", "p2", "e5");
    leader.append(&d).expect("append");
    let complete_fp = leader_fingerprint(&leader);
    drop(leader);

    // crash mid-write: only half of the second record reaches the disk
    let mut bytes = std::fs::read(&wal_path).expect("read log");
    let before = bytes.len();
    bytes.extend_from_slice(&[0x2a; 9]); // 9 bytes < the 12-byte frame
    std::fs::write(&wal_path, &bytes).expect("inject torn tail");

    // recovery replays the complete record and reports (not applies)
    // the torn one
    let report = recover(base.clone(), 1, &wal_path).expect("recover");
    assert_eq!(report.records_applied, 1);
    assert!(report.truncated_tail, "the torn tail must be reported");
    assert_eq!(leader_fingerprint(&report.store), complete_fp);

    // a resuming writer truncates the torn bytes and appends cleanly
    // after them
    let (writer, torn) = WalWriter::resume(&wal_path).expect("resume");
    assert!(torn);
    assert_eq!(
        std::fs::metadata(&wal_path).expect("meta").len(),
        before as u64,
        "resume must drop exactly the torn bytes"
    );
    report.store.attach_wal(writer).expect("attach");
    let mut d2 = DeltaBatch::new();
    d2.triple("e1", "p3", "e6");
    report.store.append(&d2).expect("append after resume");
    let (_, records, torn) = read_records(&wal_path).expect("read back");
    assert!(!torn);
    assert_eq!(records.len(), 2, "one replayed + one fresh, no debris");
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn follower_restarting_mid_stream_resumes_idempotently() {
    let wal_path = scratch_wal("follower_restart");
    let _ = std::fs::remove_file(&wal_path);
    let spec: BaseSpec = (vec![(0, 0, 1), (2, 1, 3)], vec![], vec![(0, 0)]);
    let base = base_graph(&spec);
    let leader = LiveStore::with_threads(base.clone(), 1);
    leader.log_to(&wal_path).expect("log");

    let mut first = ReplicaStore::open(base, 1, &wal_path).expect("open");
    let mut d1 = DeltaBatch::new();
    d1.triple("e0", "p0", "e7");
    leader.append(&d1).expect("append");
    let mut d2 = DeltaBatch::new();
    d2.typed("e7", "t2");
    leader.append(&d2).expect("append");

    // the follower applies ONE of the two records, then "crashes" —
    // its store and sync cursor survive, its reader does not
    assert!(first.poll_step().expect("first record"));
    let cursor = first.synced_generation();
    assert_eq!(cursor, 1);
    let store = Arc::clone(first.store());
    drop(first);

    // restart mid-stream: re-attach the surviving store at its cursor
    let mut second = ReplicaStore::attach(store, &wal_path, cursor).expect("re-attach");
    let applied = second.sync().expect("resync");
    assert_eq!(
        applied, 1,
        "the already-applied record must be skipped, the missing one applied"
    );
    assert_eq!(second.synced_generation(), 2);
    assert_eq!(
        leader_fingerprint(second.store()),
        leader_fingerprint(&leader),
        "an idempotent resume lands exactly on the leader's state"
    );
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn leader_crash_between_log_write_and_apply_recovers_the_logged_batch() {
    let wal_path = scratch_wal("log_then_crash");
    let _ = std::fs::remove_file(&wal_path);
    let spec: BaseSpec = (vec![(0, 0, 1)], vec![], vec![]);
    let base = base_graph(&spec);
    let leader = LiveStore::with_threads(base.clone(), 1);
    leader.log_to(&wal_path).expect("log");
    let mut d1 = DeltaBatch::new();
    d1.triple("e0", "p1", "e4");
    leader.append(&d1).expect("append");
    drop(leader);

    // the crash window: the record reached the log, the store never
    // applied it — simulated by appending straight to the log file
    let mut d2 = DeltaBatch::new();
    d2.triple("e4", "p2", "e5");
    let (mut writer, torn) = WalWriter::resume(&wal_path).expect("resume");
    assert!(!torn);
    let stamped = writer
        .append_event(WalEvent::Delta(d2.clone()))
        .expect("log without applying");
    assert_eq!(stamped, 2);
    drop(writer);

    // the log is authoritative: recovery replays BOTH batches
    let report = recover(base.clone(), 1, &wal_path).expect("recover");
    assert_eq!(report.records_applied, 2);
    assert_eq!(report.synced_generation, 2);
    let mut replay = base;
    replay.apply(&d1);
    replay.apply(&d2);
    assert_eq!(
        leader_fingerprint(&report.store),
        pivote_kg::fingerprint(&replay),
        "recovery must include the logged-but-unapplied batch"
    );

    // and a follower tailing the same log sees the same state
    let spec: BaseSpec = (vec![(0, 0, 1)], vec![], vec![]);
    let mut follower = ReplicaStore::open(base_graph(&spec), 1, &wal_path).expect("open");
    follower.sync().expect("sync");
    assert_eq!(
        leader_fingerprint(follower.store()),
        leader_fingerprint(&report.store)
    );
    let _ = std::fs::remove_file(&wal_path);
}

//! Golden-file regression test for the incremental store.
//!
//! `data/sample.nt` is ingested in **two halves** — the first half parsed
//! into a base graph, the second half appended as a
//! [`DeltaBatch`](pivote_kg::DeltaBatch) via `KnowledgeGraph::apply` (and,
//! sharded, via `ShardedGraph::apply` at the counts from `PIVOTE_SHARDS`)
//! — and the resulting rankings must reproduce
//! `tests/golden/sample_rankings.json` **exactly**: the same golden file
//! the full-parse backends are held to in `golden_sharded.rs`. Any drift
//! in the splice path, the op-ordered interning or the delta routing
//! fails this test with a readable diff.
//!
//! `PIVOTE_GOLDEN_WRITE=1` regenerates the golden from the full parse
//! (same bytes `golden_sharded.rs` writes) and then still checks the
//! incremental path against it, so regeneration covers both paths.

use pivote_core::{Expander, GraphHandle, HeatMap, RankingConfig, SfQuery};
use pivote_kg::{shard_counts_from_env, EntityId, KnowledgeGraph, ShardedGraph};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sample_rankings.json"
);

/// Mirror of the golden schema in `golden_sharded.rs`.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    seeds: Vec<String>,
    features: Vec<(String, f64)>,
    entities: Vec<(String, f64)>,
    heatmap_levels: Vec<Vec<u8>>,
    heatmap_values: Vec<Vec<f64>>,
}

fn snapshot(handle: &GraphHandle<'_>) -> Golden {
    let gump = handle.entity("Forrest_Gump").expect("Forrest_Gump");
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(vec![gump]), 10, 10);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    Golden {
        seeds: vec![handle.entity_name(gump).to_owned()],
        features: res
            .features
            .iter()
            .map(|rf| (handle.feature_display(rf.feature), rf.score))
            .collect(),
        entities: res
            .entities
            .iter()
            .map(|re| (handle.entity_name(re.entity).to_owned(), re.score))
            .collect(),
        heatmap_levels: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.level(row, col)).collect())
            .collect(),
        heatmap_values: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.value(row, col)).collect())
            .collect(),
    }
}

/// The bundled sample split at a statement boundary: first half for the
/// base parse, second half for the append.
fn halves() -> (String, String) {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    let lines: Vec<&str> = nt.lines().collect();
    let cut = lines.len() / 2;
    (lines[..cut].join("\n"), lines[cut..].join("\n"))
}

/// Base graph from the first half, delta batch from the second.
fn base_and_delta() -> (KnowledgeGraph, pivote_kg::DeltaBatch) {
    let (first, second) = halves();
    (
        pivote_kg::parse(&first).expect("first half parses"),
        pivote_kg::parse_into_delta(&second).expect("second half parses as a delta"),
    )
}

#[test]
fn golden_rankings_reproduce_through_the_append_path() {
    // regeneration covers the incremental path too: write from the full
    // parse (identical bytes to golden_sharded's regen), then verify the
    // append path against the file like any other backend
    if std::env::var("PIVOTE_GOLDEN_WRITE").is_ok() {
        let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
            .expect("bundled sample exists");
        let kg = pivote_kg::parse(&nt).expect("sample parses");
        let full = snapshot(&GraphHandle::single_with_threads(&kg, 1));
        std::fs::write(
            GOLDEN_PATH,
            serde_json::to_string_pretty(&full).expect("golden serializes"),
        )
        .expect("golden written");
    }
    let golden_json = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists — regenerate with PIVOTE_GOLDEN_WRITE=1");
    let golden: Golden = serde_json::from_str(&golden_json).expect("golden parses");

    // single-graph append path
    let (mut kg, delta) = base_and_delta();
    let receipt = kg.apply(&delta);
    assert_eq!(kg.generation(), 1);
    assert!(receipt.added_relations > 0, "the second half adds triples");
    let got = snapshot(&GraphHandle::single_with_threads(&kg, 1));
    assert_eq!(
        got, golden,
        "appending sample.nt's second half drifted from the golden rankings"
    );

    // sharded append path, across the CI shard matrix
    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let (base, delta) = base_and_delta();
        let mut sg = ShardedGraph::from_graph(&base, shards);
        sg.apply(&delta);
        for threads in [1, 2] {
            let got = snapshot(&GraphHandle::sharded_with_threads(&sg, threads));
            assert_eq!(
                got, golden,
                "sharded append path (shards={shards}, threads={threads}) \
                 drifted from the golden rankings"
            );
        }
    }
}

//! Longer scripted sessions: the two demo scenarios of §3 executed end
//! to end, plus persistence.

use pivote::prelude::*;
use pivote_core::Direction;
use pivote_explore::SessionState;

fn kg() -> KnowledgeGraph {
    generate(&DatagenConfig::small())
}

/// §3.1 Entity investigation: keywords → click → feature condition →
/// profile lookup, narrowing the space while staying in the Film domain.
#[test]
fn scenario_entity_investigation() {
    let kg = kg();
    let mut s = Session::with_defaults(&kg);
    let film = kg.type_id("Film").unwrap();
    let gump = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .unwrap();

    // keywords
    s.submit_keywords(&kg.display_name(gump));
    assert_eq!(s.view().entities[0].entity, gump);

    // "Find films similar to Forrest Gump": click the film
    let view = s.click_entity(gump);
    let n_before = view.entities.len();
    assert!(n_before > 0);
    assert!(view.entities.iter().all(|re| kg.has_type(re.entity, film)));

    // "Find films starring Tom Hanks": require the top starring feature
    let starring = kg.predicate("starring").unwrap();
    let top_star_feature = view
        .features
        .iter()
        .find(|rf| rf.feature.predicate == starring)
        .map(|rf| rf.feature)
        .expect("a starring feature is recommended");
    let view = s.select_feature(top_star_feature);
    assert!(
        view.entities
            .iter()
            .all(|re| top_star_feature.matches(&kg, re.entity)),
        "all results must satisfy the required feature"
    );

    // profile lookup redirects to Wikipedia
    s.lookup(gump);
    let profile = s.view().focus.as_ref().unwrap();
    assert!(profile
        .wikipedia_url
        .starts_with("https://en.wikipedia.org/wiki/"));
}

/// §3.2 Search domain exploration: investigate films, understand the
/// correlation via the heat map, pivot to the actor domain, keep going.
#[test]
fn scenario_search_domain_exploration() {
    let kg = kg();
    let mut s = Session::with_defaults(&kg);
    let film = kg.type_id("Film").unwrap();
    let actor = kg.type_id("Actor").unwrap();
    let seed = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .unwrap();
    s.click_entity(seed);

    // the heat map explains the recommendation
    let hm = &s.view().heatmap;
    assert!(
        hm.levels.iter().any(|&l| l >= 5),
        "some strong correlations"
    );

    // explanation between the top two recommended films mentions a shared
    // anchor (the Tom_Hanks/Gary_Sinise pattern of the paper)
    if s.view().entities.len() >= 2 {
        let a = s.view().entities[0].entity;
        let b = s.view().entities[1].entity;
        let exp = explain_pair(s.expander().ranker(), a, b, 3);
        let text = exp.render(&kg);
        assert!(text.contains("Both"), "{text}");
    }

    // pivot into the Actor domain through the seed's cast
    let starring = kg.predicate("starring").unwrap();
    let view = s.pivot(SemanticFeature {
        anchor: seed,
        predicate: starring,
        direction: Direction::FromAnchor,
    });
    assert_eq!(view.query.sf.type_filter, Some(actor));
    assert!(!view.entities.is_empty());
    assert!(view.entities.iter().all(|re| kg.has_type(re.entity, actor)));

    // and back out to films of the top actor
    let top_actor = view.entities[0].entity;
    let view = s.pivot(SemanticFeature::to_anchor(top_actor, starring));
    assert_eq!(view.query.sf.type_filter, Some(film));

    // the whole journey is recorded
    assert!(s.timeline().len() >= 3);
    let trail = s.path().query_trail();
    assert!(trail.len() >= 3);
}

#[test]
fn session_state_persists_across_process_boundaries() {
    let kg = kg();
    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];

    // session 1: do work, save
    let json = {
        let mut s = Session::with_defaults(&kg);
        s.submit_keywords(&kg.display_name(seed));
        s.click_entity(seed);
        s.export_json()
    };

    // session 2 (fresh engines): load, continue
    let state: SessionState = serde_json::from_str(&json).unwrap();
    let mut s = Session::with_defaults(&kg);
    s.restore_state(state);
    assert_eq!(s.timeline().len(), 2);
    assert_eq!(s.view().query.sf.seeds, vec![seed]);
    assert!(!s.view().entities.is_empty(), "restored view recomputed");

    // continuing the session works
    let next = s.view().entities[0].entity;
    s.click_entity(next);
    assert_eq!(s.view().query.sf.seeds.len(), 2);
}

//! F2 — the architecture of Fig. 2: user interface ↔ search engine ↔
//! recommendation engine, wired through one `Session` and exercised end
//! to end.

use pivote::prelude::*;

fn kg() -> KnowledgeGraph {
    generate(&DatagenConfig::small())
}

#[test]
fn search_engine_feeds_recommendation_engine() {
    let kg = kg();
    let mut session = Session::with_defaults(&kg);

    // UI -> search engine: keyword query.
    let film = kg.type_id("Film").unwrap();
    let target = kg.type_extent(film)[0];
    let view = session.submit_keywords(&kg.display_name(target));
    assert!(!view.entities.is_empty(), "search produced no entities");
    assert_eq!(
        view.entities[0].entity, target,
        "label query must rank its entity first"
    );

    // search result -> recommendation engine: click = investigate.
    let view = session.click_entity(target);
    assert!(!view.entities.is_empty(), "expansion produced no entities");
    assert!(!view.features.is_empty(), "expansion produced no features");

    // recommendation -> explanation: the heat map covers both axes and
    // quantizes into the paper's seven levels.
    let hm = &view.heatmap;
    assert_eq!(hm.width(), view.entities.len());
    assert_eq!(hm.height(), view.features.len());
    assert!(hm.levels.iter().all(|&l| l < 7));
    assert!(
        hm.levels.iter().any(|&l| l > 0),
        "heat map is entirely blank"
    );
}

#[test]
fn every_ui_area_of_fig3_is_populated() {
    let kg = kg();
    let mut session = Session::with_defaults(&kg);
    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];
    session.click_entity(seed);
    session.lookup(session.view().entities[0].entity);

    let view = session.view();
    assert!(!view.query.is_empty(), "query area (a/b)");
    assert!(!view.entities.is_empty(), "entity recommendation area (c)");
    assert!(view.focus.is_some(), "entity presentation area (d)");
    assert!(!view.features.is_empty(), "feature recommendation area (e)");
    assert!(view.heatmap.width() > 0, "explanation area (f)");
    assert!(!session.timeline().is_empty(), "timeline (g)");

    // The rendered screen mentions every area.
    let screen = render_view(&kg, view);
    for marker in ["Fig 3-c", "Fig 3-d", "Fig 3-e", "Fig 3-f"] {
        assert!(screen.contains(marker), "missing {marker}");
    }
}

#[test]
fn append_then_save_equals_rebuild_then_save() {
    // the incremental store's per-row storage must not drift from what a
    // from-scratch rebuild serializes: append-then-save is *byte*
    // identical to rebuild-then-save, and loads back to the same logical
    // graph — the guard that keeps snapshots portable across the build
    // paths (rebuild, append, sharded append + union rebuild, compaction)
    let kg = generate(&DatagenConfig::tiny());

    let (mut appended, delta) = pivote_kg::split_incremental(&kg, 0.5);
    appended.apply(&delta);
    let rebuilt = pivote_kg::split_incremental(&kg, 1.0).0;

    let mut via_append = Vec::new();
    pivote_kg::snapshot::save(&appended, &mut via_append).unwrap();
    let mut via_rebuild = Vec::new();
    pivote_kg::snapshot::save(&rebuilt, &mut via_rebuild).unwrap();
    let mut via_source = Vec::new();
    pivote_kg::snapshot::save(&kg, &mut via_source).unwrap();
    assert_eq!(
        via_append, via_rebuild,
        "append-then-save must serialize the exact bytes rebuild-then-save does"
    );
    assert_eq!(
        via_rebuild, via_source,
        "rebuild preserves the source bytes"
    );

    // the loaded graph is the same logical graph (N-Triples fingerprint)
    let loaded = pivote_kg::snapshot::load(&mut via_append.as_slice()).unwrap();
    assert_eq!(loaded.entity_count(), kg.entity_count());
    assert_eq!(loaded.triple_count(), kg.triple_count());
    assert_eq!(pivote_kg::serialize(&loaded), pivote_kg::serialize(&kg));

    // and the sharded growth path — apply entity-minting batches through
    // the router, compact, union-rebuild — snapshots to the same bytes
    let (base, batches) = pivote_kg::split_growth(&kg, 0.7, 2);
    let mut sg = pivote_kg::ShardedGraph::from_graph(&base, 2);
    for b in &batches {
        sg.apply(b);
    }
    let mut via_sharded = Vec::new();
    pivote_kg::snapshot::save(&sg.to_graph(), &mut via_sharded).unwrap();
    assert_eq!(via_sharded, via_source, "sharded append + union rebuild");
    let mut via_compacted = Vec::new();
    pivote_kg::snapshot::save(&sg.compact(3).to_graph(), &mut via_compacted).unwrap();
    assert_eq!(via_compacted, via_source, "compaction + union rebuild");
}

#[test]
fn warm_state_sidecar_survives_a_restart_with_bit_identical_rankings() {
    // persisted context warm-state: serialize the p(π|c) cache next to
    // the snapshot, reload both, and the warm rankings must be *byte*
    // identical to the cold ones — with zero densities recomputed
    use pivote_core::QueryContext;
    use std::sync::Arc;

    let kg = generate(&DatagenConfig::tiny());
    let film = kg.type_id("Film").unwrap();
    let seeds = kg.type_extent(film)[..2].to_vec();
    let cfg = RankingConfig::default();

    let dir = std::env::temp_dir();
    let snapshot_path = dir.join("pivote_warm_arch.pvte");
    let sidecar = pivote_core::warm_sidecar_path(&snapshot_path);
    pivote_kg::snapshot::save_to_path(&kg, &snapshot_path).unwrap();

    // cold run: fill the cache, record the rankings, persist the sidecar
    // stamped with the snapshot's content fingerprint
    let cache = Arc::new(pivote_core::SharedCache::new());
    let (cold_f, cold_e) = {
        let ctx = QueryContext::with_cache(&kg, 1, Arc::clone(&cache));
        let f = ctx.rank_features(&cfg, &seeds);
        let e = ctx.rank_entities(&cfg, &seeds, &f);
        (f, e)
    };
    let filled = cache.cached_probability_count();
    assert!(filled > 0, "the cold run must fill the cache");
    pivote_core::save_warm_state(&cache, pivote_kg::fingerprint(&kg), &sidecar).unwrap();

    // "server restart": reload the snapshot and the warm sidecar — the
    // loaded graph's fingerprint must accept the sidecar (the mutation
    // generation resets on load, which is exactly why the pairing key
    // is the content fingerprint)
    let kg2 = pivote_kg::snapshot::load_from_path(&snapshot_path).unwrap();
    assert_eq!(pivote_kg::fingerprint(&kg2), pivote_kg::fingerprint(&kg));
    let warm = pivote_core::load_warm_state(&sidecar, pivote_kg::fingerprint(&kg2)).unwrap();
    assert_eq!(
        warm.cached_probability_count(),
        filled,
        "every persisted density must survive the roundtrip"
    );
    let ctx = QueryContext::with_cache(&kg2, 1, Arc::clone(&warm));
    let warm_f = ctx.rank_features(&cfg, &seeds);
    assert_eq!(warm_f, cold_f, "warm features must equal cold features");
    let warm_e = ctx.rank_entities(&cfg, &seeds, &warm_f);
    assert_eq!(warm_e.len(), cold_e.len());
    for (a, b) in warm_e.iter().zip(&cold_e) {
        assert_eq!(a.entity, b.entity);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "warm score must be bit-identical to cold"
        );
    }
    assert_eq!(
        warm.cached_probability_count(),
        filled,
        "the warm run must be pure cache hits — no density recomputed"
    );

    // a logically different graph refuses the sidecar (start cold)
    let mut grown = pivote_kg::snapshot::load_from_path(&snapshot_path).unwrap();
    let mut d = pivote_kg::DeltaBatch::new();
    d.entity("Warm_Staleness_Probe");
    grown.apply(&d);
    assert!(matches!(
        pivote_core::load_warm_state(&sidecar, pivote_kg::fingerprint(&grown)),
        Err(pivote_core::WarmStateError::StaleSidecar { .. })
    ));

    let _ = std::fs::remove_file(&snapshot_path);
    let _ = std::fs::remove_file(&sidecar);
}

#[test]
fn recommendations_are_deterministic_across_sessions() {
    let kg = kg();
    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];

    let mut s1 = Session::with_defaults(&kg);
    let mut s2 = Session::with_defaults(&kg);
    let v1 = s1.click_entity(seed).clone();
    let v2 = s2.click_entity(seed).clone();
    assert_eq!(
        v1.entities.iter().map(|re| re.entity).collect::<Vec<_>>(),
        v2.entities.iter().map(|re| re.entity).collect::<Vec<_>>()
    );
    assert_eq!(
        v1.features.iter().map(|rf| rf.feature).collect::<Vec<_>>(),
        v2.features.iter().map(|rf| rf.feature).collect::<Vec<_>>()
    );
    assert_eq!(v1.heatmap.levels, v2.heatmap.levels);
}

//! F2 — the architecture of Fig. 2: user interface ↔ search engine ↔
//! recommendation engine, wired through one `Session` and exercised end
//! to end.

use pivote::prelude::*;

fn kg() -> KnowledgeGraph {
    generate(&DatagenConfig::small())
}

#[test]
fn search_engine_feeds_recommendation_engine() {
    let kg = kg();
    let mut session = Session::with_defaults(&kg);

    // UI -> search engine: keyword query.
    let film = kg.type_id("Film").unwrap();
    let target = kg.type_extent(film)[0];
    let view = session.submit_keywords(&kg.display_name(target));
    assert!(!view.entities.is_empty(), "search produced no entities");
    assert_eq!(
        view.entities[0].entity, target,
        "label query must rank its entity first"
    );

    // search result -> recommendation engine: click = investigate.
    let view = session.click_entity(target);
    assert!(!view.entities.is_empty(), "expansion produced no entities");
    assert!(!view.features.is_empty(), "expansion produced no features");

    // recommendation -> explanation: the heat map covers both axes and
    // quantizes into the paper's seven levels.
    let hm = &view.heatmap;
    assert_eq!(hm.width(), view.entities.len());
    assert_eq!(hm.height(), view.features.len());
    assert!(hm.levels.iter().all(|&l| l < 7));
    assert!(
        hm.levels.iter().any(|&l| l > 0),
        "heat map is entirely blank"
    );
}

#[test]
fn every_ui_area_of_fig3_is_populated() {
    let kg = kg();
    let mut session = Session::with_defaults(&kg);
    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];
    session.click_entity(seed);
    session.lookup(session.view().entities[0].entity);

    let view = session.view();
    assert!(!view.query.is_empty(), "query area (a/b)");
    assert!(!view.entities.is_empty(), "entity recommendation area (c)");
    assert!(view.focus.is_some(), "entity presentation area (d)");
    assert!(!view.features.is_empty(), "feature recommendation area (e)");
    assert!(view.heatmap.width() > 0, "explanation area (f)");
    assert!(!session.timeline().is_empty(), "timeline (g)");

    // The rendered screen mentions every area.
    let screen = render_view(&kg, view);
    for marker in ["Fig 3-c", "Fig 3-d", "Fig 3-e", "Fig 3-f"] {
        assert!(screen.contains(marker), "missing {marker}");
    }
}

#[test]
fn append_then_save_equals_rebuild_then_save() {
    // the incremental store's per-row storage must not drift from what a
    // from-scratch rebuild serializes: append-then-save is *byte*
    // identical to rebuild-then-save, and loads back to the same logical
    // graph — the guard that keeps snapshots portable across the build
    // paths (rebuild, append, sharded append + union rebuild, compaction)
    let kg = generate(&DatagenConfig::tiny());

    let (mut appended, delta) = pivote_kg::split_incremental(&kg, 0.5);
    appended.apply(&delta);
    let rebuilt = pivote_kg::split_incremental(&kg, 1.0).0;

    let mut via_append = Vec::new();
    pivote_kg::snapshot::save(&appended, &mut via_append).unwrap();
    let mut via_rebuild = Vec::new();
    pivote_kg::snapshot::save(&rebuilt, &mut via_rebuild).unwrap();
    let mut via_source = Vec::new();
    pivote_kg::snapshot::save(&kg, &mut via_source).unwrap();
    assert_eq!(
        via_append, via_rebuild,
        "append-then-save must serialize the exact bytes rebuild-then-save does"
    );
    assert_eq!(
        via_rebuild, via_source,
        "rebuild preserves the source bytes"
    );

    // the loaded graph is the same logical graph (N-Triples fingerprint)
    let loaded = pivote_kg::snapshot::load(&mut via_append.as_slice()).unwrap();
    assert_eq!(loaded.entity_count(), kg.entity_count());
    assert_eq!(loaded.triple_count(), kg.triple_count());
    assert_eq!(pivote_kg::serialize(&loaded), pivote_kg::serialize(&kg));

    // and the sharded growth path — apply entity-minting batches through
    // the router, compact, union-rebuild — snapshots to the same bytes
    let (base, batches) = pivote_kg::split_growth(&kg, 0.7, 2);
    let mut sg = pivote_kg::ShardedGraph::from_graph(&base, 2);
    for b in &batches {
        sg.apply(b);
    }
    let mut via_sharded = Vec::new();
    pivote_kg::snapshot::save(&sg.to_graph(), &mut via_sharded).unwrap();
    assert_eq!(via_sharded, via_source, "sharded append + union rebuild");
    let mut via_compacted = Vec::new();
    pivote_kg::snapshot::save(&sg.compact(3).to_graph(), &mut via_compacted).unwrap();
    assert_eq!(via_compacted, via_source, "compaction + union rebuild");
}

#[test]
fn recommendations_are_deterministic_across_sessions() {
    let kg = kg();
    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];

    let mut s1 = Session::with_defaults(&kg);
    let mut s2 = Session::with_defaults(&kg);
    let v1 = s1.click_entity(seed).clone();
    let v2 = s2.click_entity(seed).clone();
    assert_eq!(
        v1.entities.iter().map(|re| re.entity).collect::<Vec<_>>(),
        v2.entities.iter().map(|re| re.entity).collect::<Vec<_>>()
    );
    assert_eq!(
        v1.features.iter().map(|rf| rf.feature).collect::<Vec<_>>(),
        v2.features.iter().map(|rf| rf.feature).collect::<Vec<_>>()
    );
    assert_eq!(v1.heatmap.levels, v2.heatmap.levels);
}

//! F1a — Fig. 1-a: the local structure around an entity. A film's
//! semantic features must expose its properties "in many aspects" and
//! identify the search directions (Actor, Director, …).

use pivote::prelude::*;
use std::collections::HashSet;

#[test]
fn film_features_cover_the_expected_aspects() {
    let kg = generate(&DatagenConfig::small());
    let film = kg.type_id("Film").unwrap();
    let f = kg.type_extent(film)[0];
    let feats = features_of(&kg, f);
    assert!(feats.len() >= 5, "films should have a rich feature set");

    let predicates: HashSet<&str> = feats
        .iter()
        .map(|sf| kg.predicate_name(sf.predicate))
        .collect();
    for expected in ["starring", "director", "genre", "country", "studio"] {
        assert!(
            predicates.contains(expected),
            "missing aspect {expected}, have {predicates:?}"
        );
    }
}

#[test]
fn feature_extents_identify_search_directions() {
    // Fig. 1 caption: features "identify the possible search directions
    // (e.g., Actor and Director) for further exploration". The anchors of
    // a film's features are exactly the adjacent-domain entities.
    let kg = generate(&DatagenConfig::small());
    let film = kg.type_id("Film").unwrap();
    let actor = kg.type_id("Actor").unwrap();
    let director = kg.type_id("Director").unwrap();
    let f = kg.type_extent(film)[0];

    let anchor_types: HashSet<TypeId> = features_of(&kg, f)
        .iter()
        .flat_map(|sf| kg.types_of(sf.anchor).collect::<Vec<_>>())
        .collect();
    assert!(anchor_types.contains(&actor), "Actor direction missing");
    assert!(
        anchor_types.contains(&director),
        "Director direction missing"
    );
}

#[test]
fn two_hop_neighbourhood_is_reachable_through_extents() {
    // Forrest_Gump -> Tom_Hanks:starring -> other films: the extent of a
    // shared-anchor feature is the 2-hop co-starring neighbourhood.
    let kg = generate(&DatagenConfig::small());
    let starring = kg.predicate("starring").unwrap();
    let actor = kg.type_id("Actor").unwrap();
    let popular = *kg
        .type_extent(actor)
        .iter()
        .max_by_key(|&&a| kg.subjects(a, starring).len())
        .unwrap();
    let sf = SemanticFeature::to_anchor(popular, starring);
    let films = sf.extent(&kg);
    assert!(films.len() >= 2, "popular actor should star in many films");
    // every member of the extent matches the feature
    for &f in films {
        assert!(sf.matches(&kg, f));
    }
}

//! The streaming ingest contract, property-tested: parsing an N-Triples
//! document through `parse_stream` — under **any** reader chunking (1
//! byte .. whole document) and **any** batch bound — yields exactly the
//! op sequence of the bulk `parse_into_delta`, and applying those batches
//! produces bit-identical rankings on the single backend and on sharded
//! backends across shard counts 1–4.
//!
//! Also hosts the `PIVOTE_SCALE=1` CI smoke: a ~100k-triple generated
//! dump streamed through `StreamingIngest` over a live sharded store with
//! the maintenance thread absorbing trailing shards mid-ingest.

use pivote_core::{Expander, GraphHandle, RankingConfig, SfQuery};
use pivote_kg::{
    parse_into_delta, parse_stream, DeltaBatch, EntityId, KgBuilder, KnowledgeGraph, ShardedGraph,
};
use proptest::prelude::*;
use std::io::{BufReader, Read};

/// A reader that returns at most one pre-chosen chunk length per `read`
/// call, cycling through `chunks` — the adversarial transport for
/// chunk-boundary testing. Wrapped in a tiny `BufReader`, it forces
/// `read_line` to assemble statements from arbitrary fragments.
struct ChunkedRead<'a> {
    data: &'a [u8],
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl<'a> ChunkedRead<'a> {
    fn new(data: &'a [u8], chunks: Vec<usize>) -> Self {
        Self {
            data,
            pos: 0,
            chunks,
            next: 0,
        }
    }
}

impl Read for ChunkedRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks[self.next % self.chunks.len()].max(1);
        self.next += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Statement spec `(kind, a, b, c)` rendered to one N-Triples line by
/// [`render_document`]. Covers every routed statement shape: plain
/// triples, types, categories, labels (with escapes), integer literals
/// and redirects, plus interleaved comments and blank lines.
type DocSpec = Vec<(u8, u8, u8, u8)>;

fn doc_strategy() -> impl Strategy<Value = DocSpec> {
    proptest::collection::vec((0u8..8, 0u8..12, 0u8..5, 0u8..12), 1..40)
}

fn render_document(spec: &DocSpec) -> String {
    use std::fmt::Write as _;
    const R: &str = "http://dbpedia.org/resource/";
    const O: &str = "http://dbpedia.org/ontology/";
    let mut out = String::from("# generated test document\n");
    for &(kind, a, b, c) in spec {
        let s = format!("<{R}e{}>", a % 12);
        match kind % 8 {
            0 => {
                let _ = writeln!(out, "{s} <{O}p{}> <{R}e{}> .", b % 5, c % 12);
            }
            1 => {
                let _ = writeln!(
                    out,
                    "{s} <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{O}t{}> .",
                    b % 3
                );
            }
            2 => {
                let _ = writeln!(
                    out,
                    "{s} <http://purl.org/dc/terms/subject> \
                     <http://dbpedia.org/resource/Category:c{}> .",
                    b % 4
                );
            }
            3 => {
                let _ = writeln!(
                    out,
                    "{s} <http://www.w3.org/2000/01/rdf-schema#label> \"L\\\"{c}\\ntail\"@en ."
                );
            }
            4 => {
                let _ = writeln!(
                    out,
                    "{s} <{O}lp{}> \"{c}\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
                    b % 2
                );
            }
            5 => {
                let _ = writeln!(out, "<{R}Alias_{b}_{c}> <{O}wikiPageRedirects> {s} .",);
            }
            6 => {
                out.push_str("# interleaved comment\n");
            }
            _ => {
                out.push('\n');
            }
        }
    }
    out
}

/// Fixed base graph the parsed batches are appended onto: guarantees the
/// post-apply graph has enough structure to rank over even when the
/// random document is degenerate.
fn base_graph() -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    for i in 0..12u8 {
        b.entity(&format!("e{i}"));
    }
    for i in 0..12u8 {
        let s = b.entity(&format!("e{i}"));
        let p = b.predicate(&format!("p{}", i % 5));
        let o = b.entity(&format!("e{}", (i + 1) % 12));
        b.triple(s, p, o);
        b.typed(s, &format!("t{}", i % 3));
        b.categorized(s, &format!("c{}", i % 4));
    }
    b.finish()
}

/// Feature and entity rankings rendered from a handle — the bit-identity
/// comparison payload.
fn rankings(handle: &GraphHandle<'_>, seeds: &[EntityId]) -> Vec<(String, u64)> {
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 12, 12);
    res.features
        .iter()
        .map(|rf| (format!("f:{:?}", rf.feature), rf.score.to_bits()))
        .chain(
            res.entities
                .iter()
                .map(|re| (format!("e:{:?}", re.entity), re.score.to_bits())),
        )
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming parse under arbitrary chunking and batch bounds is
    /// bit-identical to the bulk parse — op sequence and post-apply
    /// rankings, single and sharded.
    #[test]
    fn prop_streamed_parse_equals_bulk_parse(
        spec in doc_strategy(),
        chunks in proptest::collection::vec(1usize..64, 1..8),
        max_ops in 1usize..16,
        whole in 0u8..2,
    ) {
        let doc = render_document(&spec);
        let bulk = parse_into_delta(&doc).unwrap();

        // chunked stream: tiny BufReader so statements are assembled
        // across chunk boundaries ("whole" degenerates to one huge chunk)
        let chunks = if whole == 1 { vec![doc.len().max(1)] } else { chunks };
        let reader = BufReader::with_capacity(8, ChunkedRead::new(doc.as_bytes(), chunks));
        let mut batches: Vec<DeltaBatch> = Vec::new();
        let stats = parse_stream(reader, max_ops, |b| {
            let mut copy = DeltaBatch::new();
            for op in b.ops() {
                copy.push(op.clone());
            }
            batches.push(copy);
        }).unwrap();

        // op-sequence bit-identity
        let streamed_ops: Vec<_> = batches.iter().flat_map(|b| b.ops().iter().cloned()).collect();
        prop_assert_eq!(&streamed_ops, &bulk.ops().to_vec());
        prop_assert_eq!(stats.statements, bulk.len());
        prop_assert_eq!(stats.batches, batches.len());

        // ranking bit-identity after apply: bulk single-apply is the
        // ground truth
        let mut want_kg = base_graph();
        want_kg.apply(&bulk);
        let seeds: Vec<EntityId> = vec![
            want_kg.entity("e0").unwrap(),
            want_kg.entity("e5").unwrap(),
        ];
        let want = rankings(&GraphHandle::single_with_threads(&want_kg, 1), &seeds);

        // streamed batches onto a single graph
        let mut got_kg = base_graph();
        for b in &batches {
            got_kg.apply(b);
        }
        let got = rankings(&GraphHandle::single_with_threads(&got_kg, 1), &seeds);
        prop_assert_eq!(&got, &want, "single-backend streamed apply");

        // streamed batches through the router, shards 1..=4
        for shards in 1usize..=4 {
            let mut sg = ShardedGraph::from_graph(&base_graph(), shards);
            for b in &batches {
                sg.apply(b);
            }
            let got = rankings(&GraphHandle::sharded_with_threads(&sg, 1), &seeds);
            prop_assert_eq!(&got, &want, "sharded streamed apply (shards={})", shards);
        }
    }
}

/// The `PIVOTE_SCALE=1` CI leg: stream a ~100k-triple generated dump
/// through `StreamingIngest` over a live sharded store with background
/// maintenance absorbing trailing shards mid-ingest, querying as it goes.
#[test]
fn scale_smoke_streams_generated_dump_with_maintenance() {
    if !pivote_kg::scale_from_env() {
        return;
    }
    use pivote_core::{LiveStore, MaintenanceHandle, StreamingIngest};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // ~2.5k films ≈ 100k triples (16k films ≈ 645k, BENCH_2)
    let generated = pivote_kg::generate(&pivote_kg::DatagenConfig::scaled(2_500, 7));
    let dump = pivote_kg::ntriples::serialize(&generated);
    let want = pivote_kg::parse(&dump).expect("generated dump reparses");

    let store = Arc::new(LiveStore::with_threads(
        ShardedGraph::from_graph(&KgBuilder::new().finish(), 2),
        1,
    ));
    let mut maintenance = MaintenanceHandle::spawn(
        Arc::clone(&store),
        pivote_kg::CompactionPolicy {
            max_trailing: 0,
            max_tail_fraction: 1.0,
            max_tombstone_fraction: 1.0,
        },
        2,
        Duration::from_millis(1),
    );

    let ingest = StreamingIngest::with_batch_size(Arc::clone(&store), 8_192);
    let mut batches = 0usize;
    let mut sampled_queries = 0usize;
    let report = ingest
        .ingest_with(dump.as_bytes(), |applied| {
            assert!(applied.generation > 0);
            batches += 1;
            // query while ingesting: every few batches, rank from a live
            // reader — the read path must stay coherent mid-ingest
            if batches.is_multiple_of(4) {
                let reader = store.read();
                let handle = reader.handle();
                if handle.entity_count() > 0 {
                    let _ = rankings(&handle, &[EntityId::new(0)]);
                    sampled_queries += 1;
                }
            }
        })
        .expect("streamed ingest succeeds");

    assert_eq!(report.stats.batches, batches);
    assert!(batches > 1, "the dump must span several batches");
    assert!(sampled_queries > 0, "mid-ingest queries must have run");

    let deadline = Instant::now() + Duration::from_secs(120);
    while store.trailing_shard_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    maintenance.stop();
    assert_eq!(
        store.trailing_shard_count(),
        0,
        "maintenance must absorb every trailing shard"
    );
    assert!(maintenance.passes() >= 1);

    drop(ingest);
    let got = Arc::try_unwrap(store)
        .ok()
        .expect("maintenance joined — no other owners")
        .into_inner()
        .into_single();
    assert_eq!(got.entity_count(), want.entity_count());
    assert_eq!(got.relation_count(), want.relation_count());
    assert_eq!(got.type_count(), want.type_count());
    assert_eq!(got.category_count(), want.category_count());
    assert_eq!(
        pivote_kg::ntriples::serialize(&got),
        pivote_kg::ntriples::serialize(&want),
        "streamed+maintained store must be bit-identical to the bulk parse"
    );
}

//! The snapshot-serving contract, property-tested: for **any** random
//! base graph and **any** random mixed insert/retract/compact script,
//! the generation-pinned [`pivote_core::PreparedSnapshot`] published
//! after every write answers **bit-identically** to a fresh lock-path
//! context over the same backend — at *every* generation, across shard
//! counts 1–4 (`PIVOTE_SHARDS` honoured) and context thread counts
//! 1–2. Historical snapshots are immutable: each one pinned mid-script
//! must still answer from its own backend, unchanged, after every later
//! write and compaction.
//!
//! Plus the serving-layer leg: the generation-keyed response memo must
//! hand back byte-identical responses for repeated reads, count its
//! hits, serve every read off the snapshot path (zero lock reads), and
//! drop every memoized entry the moment a write rolls the generation.

use pivote_core::{GraphHandle, LiveStore, PreparedSnapshot, RankingConfig};
use pivote_kg::{
    shard_counts_from_env, DeltaBatch, EntityId, GraphBackend, KgBuilder, KnowledgeGraph, Literal,
    ShardedGraph,
};
use pivote_serve::{num_field, response_ok, scored_list, Client, ServeConfig, Server};
use proptest::prelude::*;
use std::sync::Arc;

/// Base graph spec: edges over e0..e9 × p0..p3, categories c0..c2,
/// types t0..t1 (the same universe as `replica_equivalence`).
type BaseSpec = (Vec<(u8, u8, u8)>, Vec<(u8, u8)>, Vec<(u8, u8)>);

/// Mixed op spec `(kind, a, b, c)` decoded by [`decode`]: kinds 0–6 are
/// inserts, kinds 7–13 their retract mirrors over the denser base
/// universe so random sequences frequently retract stored statements.
type MixedSpec = Vec<(u8, u8, u8, u8)>;

fn base_strategy() -> impl Strategy<Value = BaseSpec> {
    (
        proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..30),
        proptest::collection::vec((0u8..10, 0u8..3), 0..14),
        proptest::collection::vec((0u8..10, 0u8..2), 0..10),
    )
}

fn mixed_strategy() -> impl Strategy<Value = MixedSpec> {
    proptest::collection::vec((0u8..14, 0u8..16, 0u8..6, 0u8..16), 0..20)
}

fn base_graph(spec: &BaseSpec) -> KnowledgeGraph {
    let (edges, cats, types) = spec;
    let mut b = KgBuilder::new();
    let es: Vec<_> = (0..10).map(|i| b.entity(&format!("e{i}"))).collect();
    for &(s, p, o) in edges {
        let pi = b.predicate(&format!("p{p}"));
        b.triple(es[s as usize], pi, es[o as usize]);
    }
    for &(e, c) in cats {
        b.categorized(es[e as usize], &format!("c{c}"));
    }
    for &(e, t) in types {
        b.typed(es[e as usize], &format!("t{t}"));
    }
    b.finish()
}

fn decode(spec: &[(u8, u8, u8, u8)]) -> DeltaBatch {
    let mut d = DeltaBatch::new();
    for &(kind, a, b, c) in spec {
        let ea = format!("e{}", a % 16);
        let ra = format!("e{}", a % 10);
        match kind % 14 {
            0 => {
                d.triple(ea, format!("p{}", b % 6), format!("e{}", c % 16));
            }
            1 => {
                d.typed(ea, format!("t{}", b % 3));
            }
            2 => {
                d.categorized(ea, format!("c{}", b % 4));
            }
            3 => {
                d.label(ea, format!("L{c}"));
            }
            4 => {
                d.literal(ea, format!("lp{}", b % 2), Literal::integer(c as i64));
            }
            5 => {
                d.redirect(format!("Alias{b}{c}"), ea);
            }
            6 => {
                d.entity(ea);
            }
            7 => {
                d.retract_triple(ra, format!("p{}", b % 4), format!("e{}", c % 10));
            }
            8 => {
                d.retract_typed(ra, format!("t{}", b % 2));
            }
            9 => {
                d.retract_categorized(ra, format!("c{}", b % 3));
            }
            10 => {
                d.retract_label(ra, format!("L{c}"));
            }
            11 => {
                d.retract_literal(ra, format!("lp{}", b % 2), Literal::integer(c as i64));
            }
            12 => {
                d.retract_alias(format!("Alias{b}{c}"), ra);
            }
            _ => {
                d.retract_triple(ra.clone(), format!("p{}", b % 4), ra);
            }
        }
    }
    d
}

/// One write between snapshot checks. Every variant publishes exactly
/// one new snapshot, so the per-step comparison below really does check
/// **every** generation the store ever serves.
enum Step {
    Delta(DeltaBatch),
    Compact(usize),
}

/// A genuinely independent lock-path context over the snapshot's pinned
/// backend: fresh caches, no shared state with the prepared context.
fn fresh_handle(backend: &GraphBackend, threads: usize) -> GraphHandle<'_> {
    match backend {
        GraphBackend::Single(kg) => GraphHandle::single_with_threads(kg, threads),
        GraphBackend::Sharded(sg) => GraphHandle::sharded_with_threads(sg, threads),
    }
}

/// The contract itself: the prepared context and a fresh context over
/// the same pinned backend rank bit-identically, features and entities.
fn assert_bit_identical(snap: &PreparedSnapshot, threads: usize, tag: &str) {
    let fresh = fresh_handle(snap.backend(), threads);
    let cfg = RankingConfig::default();
    for probe in [
        vec![EntityId::new(0)],
        vec![EntityId::new(1), EntityId::new(2)],
    ] {
        let want_f = fresh.rank_features(&cfg, &probe);
        let got_f = snap.handle().rank_features(&cfg, &probe);
        assert_eq!(got_f, want_f, "{tag}: snapshot features diverged");
        let want_e = fresh.rank_entities(&cfg, &probe, &want_f);
        let got_e = snap.handle().rank_entities(&cfg, &probe, &got_f);
        assert_eq!(got_e, want_e, "{tag}: snapshot entities diverged");
    }
}

fn run_script(shards: usize, threads: usize, base: &BaseSpec, steps: Vec<Step>) {
    let base_kg = base_graph(base);
    let backend: GraphBackend = if shards > 1 {
        ShardedGraph::from_graph(&base_kg, shards).into()
    } else {
        base_kg.into()
    };
    let store = LiveStore::with_threads(backend, threads);
    store.enable_snapshots();

    let mut pinned: Vec<Arc<PreparedSnapshot>> = Vec::new();
    let first = store.snapshot().expect("enabling publishes immediately");
    assert_bit_identical(&first, threads, "initial snapshot");
    pinned.push(first);

    for (i, step) in steps.into_iter().enumerate() {
        match step {
            Step::Delta(d) => {
                store.append(&d).expect("append");
            }
            Step::Compact(target) => {
                store.compact_in_place(target).expect("compact");
            }
        }
        let snap = store.snapshot().expect("every write republishes");
        assert_eq!(
            snap.generation(),
            store.generation(),
            "step {i}: publication must track the write (shards={shards})"
        );
        assert_bit_identical(
            &snap,
            threads,
            &format!("step {i} (shards={shards}, threads={threads})"),
        );
        pinned.push(snap);
    }

    // generation pinning: every historical snapshot still answers from
    // its own immutable backend after all later writes and compactions
    for (g, snap) in pinned.iter().enumerate() {
        assert_bit_identical(
            snap,
            threads,
            &format!("pinned snapshot {g} (shards={shards}, threads={threads})"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn prop_snapshot_equals_lock_path_at_every_generation(
        base in base_strategy(),
        m1 in mixed_strategy(),
        m2 in mixed_strategy(),
        m3 in mixed_strategy(),
        compact_to in 1usize..3,
    ) {
        for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
            for threads in [1usize, 2] {
                run_script(
                    shards,
                    threads,
                    &base,
                    vec![
                        Step::Delta(decode(&m1)),
                        Step::Compact(compact_to),
                        Step::Delta(decode(&m2)),
                        Step::Delta(decode(&m3)),
                        Step::Compact(shards),
                    ],
                );
            }
        }
    }
}

/// The deterministic golden leg: a fixed script, every shard count.
#[test]
fn golden_snapshot_script_is_exact() {
    let base: BaseSpec = (
        vec![(0, 0, 1), (1, 1, 2), (2, 0, 3), (3, 2, 4), (5, 3, 0)],
        vec![(0, 0), (1, 1), (2, 0)],
        vec![(0, 0), (1, 1)],
    );
    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let mut d1 = DeltaBatch::new();
        d1.triple("e0", "p0", "e10");
        d1.typed("e10", "t0");
        d1.literal("e10", "lp0", Literal::integer(7));
        let mut d2 = DeltaBatch::new();
        d2.retract_triple("e0", "p0", "e1");
        d2.retract_typed("e1", "t1");
        run_script(
            shards,
            1,
            &base,
            vec![
                Step::Delta(d1),
                Step::Compact(2),
                Step::Delta(d2),
                Step::Compact(shards),
            ],
        );
    }
}

// ---------------------------------------------------------------------
// serving-layer memo
// ---------------------------------------------------------------------

fn sample() -> KnowledgeGraph {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    pivote_kg::parse(&nt).expect("sample parses")
}

/// Memoized responses are byte-identical to freshly computed ones, hits
/// are counted, every read runs off the snapshot path, and a write
/// drops the memo — the next read answers at the new generation.
#[test]
fn memoized_responses_match_fresh_and_roll_with_the_generation() {
    let store = Arc::new(LiveStore::with_threads(sample(), 1));
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // ground truth from a lock-path server over an identical graph
    let lock_store = Arc::new(LiveStore::with_threads(sample(), 1));
    let lock_config = ServeConfig {
        snapshots: false,
        ..ServeConfig::default()
    };
    let lock_server = Server::bind("127.0.0.1:0", lock_store, lock_config).expect("bind lock");
    let mut lock_client = Client::connect(lock_server.local_addr()).expect("connect lock");

    let first = client.rank(&["Forrest_Gump"], 10, 10).expect("rank");
    assert!(response_ok(&first), "{first:?}");
    let want = lock_client.rank(&["Forrest_Gump"], 10, 10).expect("rank");
    assert!(response_ok(&want), "{want:?}");
    assert_eq!(
        scored_list(&first, "features"),
        scored_list(&want, "features"),
        "snapshot-path response diverged from the lock path"
    );
    assert_eq!(
        scored_list(&first, "entities"),
        scored_list(&want, "entities")
    );

    // the repeat comes out of the memo, byte-identical
    let again = client.rank(&["Forrest_Gump"], 10, 10).expect("rank again");
    assert_eq!(
        scored_list(&again, "features"),
        scored_list(&first, "features")
    );
    assert_eq!(
        scored_list(&again, "entities"),
        scored_list(&first, "entities")
    );
    assert_eq!(
        num_field(&again, "generation"),
        num_field(&first, "generation")
    );
    let stats = client.stats().expect("stats");
    assert!(response_ok(&stats));
    assert!(
        num_field(&stats, "memo_hits").expect("memo_hits") >= 1,
        "the repeated read must be a memo hit: {stats:?}"
    );
    assert_eq!(
        num_field(&stats, "lock_reads"),
        Some(0),
        "with snapshots on, no read may touch the store lock: {stats:?}"
    );
    assert!(num_field(&stats, "snapshot_reads").expect("snapshot_reads") >= 2);

    // a write rolls the generation: the memo must not serve stale state
    let nt = "<http://dbpedia.org/resource/Memo_Roll> \
              <http://dbpedia.org/ontology/servedBy> \
              <http://dbpedia.org/resource/Forrest_Gump> .\n";
    let v = client.append(nt).expect("append");
    assert!(response_ok(&v), "{v:?}");
    let after = client
        .rank(&["Forrest_Gump"], 10, 10)
        .expect("rank after write");
    assert!(response_ok(&after));
    assert_eq!(
        num_field(&after, "generation"),
        Some(1),
        "the post-write read must answer at the new generation, not the memoized one"
    );
    // and it matches the lock path replaying the same write
    let v = lock_client.append(nt).expect("append lock");
    assert!(response_ok(&v), "{v:?}");
    let want_after = lock_client
        .rank(&["Forrest_Gump"], 10, 10)
        .expect("rank lock");
    assert_eq!(
        scored_list(&after, "entities"),
        scored_list(&want_after, "entities"),
        "post-write snapshot response diverged from the lock path"
    );
}

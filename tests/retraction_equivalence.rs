//! The retraction contract, property-tested: for **any** random base
//! graph and **any** random mixed insert/retract sequence, the graph
//! after applying the sequence is bit-identical — feature rankings,
//! entity rankings, heat maps and entity profiles — to a from-scratch
//! rebuild of the *surviving* statements, on the single-graph backend
//! and on the sharded backend across shard counts 1–4
//! (`PIVOTE_SHARDS` honoured) × worker threads 1–2. And compaction
//! (single-layout `reclaim`, sharded `compact`) reclaims every
//! tombstone without moving a single score.
//!
//! Ground truth is a shadow statement store with the library's exact
//! semantics: triples and type/category assertions are sets, literal
//! statements are a multiset whose retract removes *every* matching
//! copy, labels overwrite and clear in place, aliases are per-target
//! sets — and retracts never intern a dictionary name, so the rebuild
//! interns names in insert-op order only.

use pivote_core::{GraphHandle, RankingConfig, SfQuery};
use pivote_kg::{shard_counts_from_env, DeltaBatch, EntityId, KgBuilder, KnowledgeGraph, Literal};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Base graph spec: edges over e0..e9 × p0..p3, categories c0..c2,
/// types t0..t1 (the same universe as `incremental_equivalence`).
type BaseSpec = (Vec<(u8, u8, u8)>, Vec<(u8, u8)>, Vec<(u8, u8)>);

/// Mixed op spec `(kind, a, b, c)` decoded by [`decode`]: kinds 0–6 are
/// the insert ops of the incremental suite, kinds 7–13 their retract
/// mirrors. Retract kinds use the *base* universe moduli so random
/// sequences frequently retract statements that actually exist.
type MixedSpec = Vec<(u8, u8, u8, u8)>;

fn base_strategy() -> impl Strategy<Value = BaseSpec> {
    (
        proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..40),
        proptest::collection::vec((0u8..10, 0u8..3), 0..20),
        proptest::collection::vec((0u8..10, 0u8..2), 0..14),
    )
}

fn mixed_strategy() -> impl Strategy<Value = MixedSpec> {
    proptest::collection::vec((0u8..14, 0u8..16, 0u8..6, 0u8..16), 0..28)
}

/// One name-level statement op — the unified script both the live graph
/// and the shadow store replay.
#[derive(Clone, Debug)]
enum Op {
    Entity(String),
    Triple(String, String, String),
    Typed(String, String),
    Categorized(String, String),
    Label(String, String),
    LiteralI(String, String, i64),
    Redirect(String, String),
    RetractTriple(String, String, String),
    RetractTyped(String, String),
    RetractCategorized(String, String),
    RetractLabel(String, String),
    RetractLiteral(String, String, i64),
    RetractAlias(String, String),
}

fn decode(spec: &MixedSpec) -> Vec<Op> {
    let mut ops = Vec::with_capacity(spec.len());
    for &(kind, a, b, c) in spec {
        let ea = format!("e{}", a % 16);
        // retracts target the denser base universe so they hit
        let ra = format!("e{}", a % 10);
        ops.push(match kind % 14 {
            0 => Op::Triple(ea, format!("p{}", b % 6), format!("e{}", c % 16)),
            1 => Op::Typed(ea, format!("t{}", b % 3)),
            2 => Op::Categorized(ea, format!("c{}", b % 4)),
            3 => Op::Label(ea, format!("L{c}")),
            4 => Op::LiteralI(ea, format!("lp{}", b % 2), c as i64),
            5 => Op::Redirect(format!("Alias{b}{c}"), ea),
            6 => Op::Entity(ea),
            7 => Op::RetractTriple(ra, format!("p{}", b % 4), format!("e{}", c % 10)),
            8 => Op::RetractTyped(ra, format!("t{}", b % 2)),
            9 => Op::RetractCategorized(ra, format!("c{}", b % 3)),
            10 => Op::RetractLabel(ra, format!("L{c}")),
            11 => Op::RetractLiteral(ra, format!("lp{}", b % 2), c as i64),
            12 => Op::RetractAlias(format!("Alias{b}{c}"), ra),
            _ => Op::RetractTriple(ra.clone(), format!("p{}", b % 4), ra),
        });
    }
    ops
}

/// The base spec as a script of insert ops (the exact op order
/// `base_builder` interns in).
fn base_script(spec: &BaseSpec) -> Vec<Op> {
    let (edges, cats, types) = spec;
    let mut ops = Vec::new();
    for i in 0..10u8 {
        ops.push(Op::Entity(format!("e{i}")));
    }
    for &(s, p, o) in edges {
        ops.push(Op::Triple(
            format!("e{s}"),
            format!("p{p}"),
            format!("e{o}"),
        ));
    }
    for &(e, c) in cats {
        ops.push(Op::Categorized(format!("e{e}"), format!("c{c}")));
    }
    for &(e, t) in types {
        ops.push(Op::Typed(format!("e{e}"), format!("t{t}")));
    }
    ops
}

fn base_builder(spec: &BaseSpec) -> KgBuilder {
    let mut b = KgBuilder::new();
    let mut literal_idx = 0;
    replay_into_builder(
        &base_script(spec),
        &shadow(&[base_script(spec)]),
        &mut b,
        &mut literal_idx,
    );
    b
}

fn delta_batch(ops: &[Op]) -> DeltaBatch {
    let mut d = DeltaBatch::new();
    for op in ops {
        match op {
            Op::Entity(e) => {
                d.entity(e.clone());
            }
            Op::Triple(s, p, o) => {
                d.triple(s.clone(), p.clone(), o.clone());
            }
            Op::Typed(e, t) => {
                d.typed(e.clone(), t.clone());
            }
            Op::Categorized(e, c) => {
                d.categorized(e.clone(), c.clone());
            }
            Op::Label(e, l) => {
                d.label(e.clone(), l.clone());
            }
            Op::LiteralI(s, p, v) => {
                d.literal(s.clone(), p.clone(), Literal::integer(*v));
            }
            Op::Redirect(a, t) => {
                d.redirect(a.clone(), t.clone());
            }
            Op::RetractTriple(s, p, o) => {
                d.retract_triple(s.clone(), p.clone(), o.clone());
            }
            Op::RetractTyped(e, t) => {
                d.retract_typed(e.clone(), t.clone());
            }
            Op::RetractCategorized(e, c) => {
                d.retract_categorized(e.clone(), c.clone());
            }
            Op::RetractLabel(e, l) => {
                d.retract_label(e.clone(), l.clone());
            }
            Op::RetractLiteral(s, p, v) => {
                d.retract_literal(s.clone(), p.clone(), Literal::integer(*v));
            }
            Op::RetractAlias(a, t) => {
                d.retract_alias(a.clone(), t.clone());
            }
        }
    }
    d
}

/// What survives a script: the statement-level ground truth.
struct Shadow {
    triples: HashSet<(String, String, String)>,
    types: HashSet<(String, String)>,
    cats: HashSet<(String, String)>,
    labels: HashMap<String, String>,
    aliases: HashSet<(String, String)>,
    /// Every literal insert instance, in script order, with liveness —
    /// a retract kills *all* live copies matching its value.
    literal_alive: Vec<bool>,
}

fn shadow(scripts: &[Vec<Op>]) -> Shadow {
    let mut sh = Shadow {
        triples: HashSet::new(),
        types: HashSet::new(),
        cats: HashSet::new(),
        labels: HashMap::new(),
        aliases: HashSet::new(),
        literal_alive: Vec::new(),
    };
    // instance bookkeeping for the literal multiset
    let mut literal_keys: Vec<(String, String, i64)> = Vec::new();
    for op in scripts.iter().flatten() {
        match op {
            Op::Entity(_) => {}
            Op::Triple(s, p, o) => {
                sh.triples.insert((s.clone(), p.clone(), o.clone()));
            }
            Op::Typed(e, t) => {
                sh.types.insert((e.clone(), t.clone()));
            }
            Op::Categorized(e, c) => {
                sh.cats.insert((e.clone(), c.clone()));
            }
            Op::Label(e, l) => {
                sh.labels.insert(e.clone(), l.clone());
            }
            Op::LiteralI(s, p, v) => {
                literal_keys.push((s.clone(), p.clone(), *v));
                sh.literal_alive.push(true);
            }
            Op::Redirect(a, t) => {
                sh.aliases.insert((a.clone(), t.clone()));
            }
            Op::RetractTriple(s, p, o) => {
                sh.triples.remove(&(s.clone(), p.clone(), o.clone()));
            }
            Op::RetractTyped(e, t) => {
                sh.types.remove(&(e.clone(), t.clone()));
            }
            Op::RetractCategorized(e, c) => {
                sh.cats.remove(&(e.clone(), c.clone()));
            }
            Op::RetractLabel(e, l) => {
                if sh.labels.get(e) == Some(l) {
                    sh.labels.remove(e);
                }
            }
            Op::RetractLiteral(s, p, v) => {
                for (i, key) in literal_keys.iter().enumerate() {
                    if key.0 == *s && key.1 == *p && key.2 == *v {
                        sh.literal_alive[i] = false;
                    }
                }
            }
            Op::RetractAlias(a, t) => {
                sh.aliases.remove(&(a.clone(), t.clone()));
            }
        }
    }
    sh
}

/// Rebuild the surviving statements with the live graph's dictionary
/// order: every *insert* op interns its names at its script position
/// (retracts never intern), but only statements the shadow says survived
/// are materialized.
fn replay_into_builder(script: &[Op], sh: &Shadow, b: &mut KgBuilder, literal_idx: &mut usize) {
    for op in script {
        match op {
            Op::Entity(e) => {
                b.entity(e);
            }
            Op::Triple(s, p, o) => {
                let (si, pi, oi) = (b.entity(s), b.predicate(p), b.entity(o));
                if sh.triples.contains(&(s.clone(), p.clone(), o.clone())) {
                    b.triple(si, pi, oi);
                }
            }
            Op::Typed(e, t) => {
                let ei = b.entity(e);
                b.declare_type(t);
                if sh.types.contains(&(e.clone(), t.clone())) {
                    b.typed(ei, t);
                }
            }
            Op::Categorized(e, c) => {
                let ei = b.entity(e);
                b.declare_category(c);
                if sh.cats.contains(&(e.clone(), c.clone())) {
                    b.categorized(ei, c);
                }
            }
            Op::Label(e, _) => {
                b.entity(e);
            }
            Op::LiteralI(s, p, v) => {
                let (si, pi) = (b.entity(s), b.predicate(p));
                if sh.literal_alive[*literal_idx] {
                    b.literal_triple(si, pi, Literal::integer(*v));
                }
                *literal_idx += 1;
            }
            Op::Redirect(_, t) => {
                b.entity(t);
            }
            _ => {} // retracts intern nothing
        }
    }
}

fn finish_builder(sh: &Shadow, mut b: KgBuilder) -> KnowledgeGraph {
    // labels overwrite, so only the final value per entity matters
    for (e, l) in &sh.labels {
        let ei = b.entity(e);
        b.label(ei, l.clone());
    }
    // alias rows are sorted + deduplicated at finish, so order is free
    let mut aliases: Vec<_> = sh.aliases.iter().collect();
    aliases.sort();
    for (a, t) in aliases {
        let ti = b.entity(t);
        b.redirect(a.clone(), ti);
    }
    b.finish()
}

/// The full ground truth: base + deltas replayed through the shadow.
fn ground_truth(base: &BaseSpec, deltas: &[Vec<Op>]) -> KnowledgeGraph {
    let mut scripts = vec![base_script(base)];
    scripts.extend(deltas.iter().cloned());
    let sh = shadow(&scripts);
    let mut b = KgBuilder::new();
    let mut literal_idx = 0;
    for script in &scripts {
        replay_into_builder(script, &sh, &mut b, &mut literal_idx);
    }
    finish_builder(&sh, b)
}

/// Everything the interface renders for one query — the comparison
/// payload (the incremental suite's snapshot, minus profiles for
/// brevity: profiles read the same extents the rankings do).
struct Snapshot {
    features: Vec<(pivote_core::SemanticFeature, f64)>,
    entities: Vec<(EntityId, f64)>,
    heat_levels: Vec<u8>,
    heat_values: Vec<f64>,
    profiles: Vec<pivote_explore::EntityProfile>,
}

fn snapshot(handle: &GraphHandle<'_>, seeds: &[EntityId], probes: &[EntityId]) -> Snapshot {
    let expander = pivote_core::Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(seeds.to_vec()), 15, 10);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = pivote_core::HeatMap::compute(expander.ranker(), &axis, &res.features);
    let mut heat_levels = Vec::new();
    let mut heat_values = Vec::new();
    for row in 0..hm.height() {
        for col in 0..hm.width() {
            heat_levels.push(hm.level(row, col));
            heat_values.push(hm.value(row, col));
        }
    }
    Snapshot {
        features: res
            .features
            .iter()
            .map(|rf| (rf.feature, rf.score))
            .collect(),
        entities: res
            .entities
            .iter()
            .map(|re| (re.entity, re.score))
            .collect(),
        heat_levels,
        heat_values,
        profiles: probes
            .iter()
            .map(|&e| pivote_explore::build_profile(expander.ranker(), e, 8))
            .collect(),
    }
}

fn assert_snapshots_equal(got: &Snapshot, want: &Snapshot, what: &str) {
    assert_eq!(
        got.features.len(),
        want.features.len(),
        "{what}: feature count"
    );
    for (a, b) in got.features.iter().zip(&want.features) {
        assert_eq!(a.0, b.0, "{what}: feature order");
        assert!(
            a.1.to_bits() == b.1.to_bits(),
            "{what}: feature score drifted"
        );
    }
    assert_eq!(
        got.entities.len(),
        want.entities.len(),
        "{what}: entity count"
    );
    for (a, b) in got.entities.iter().zip(&want.entities) {
        assert_eq!(a.0, b.0, "{what}: entity order");
        assert!(
            a.1.to_bits() == b.1.to_bits(),
            "{what}: entity score drifted"
        );
    }
    assert_eq!(got.heat_levels, want.heat_levels, "{what}: heat levels");
    assert_eq!(got.heat_values.len(), want.heat_values.len());
    for (a, b) in got.heat_values.iter().zip(&want.heat_values) {
        assert!(a.to_bits() == b.to_bits(), "{what}: heat value drifted");
    }
    assert_eq!(got.profiles, want.profiles, "{what}: profiles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_mixed_workload_equals_rebuild_from_survivors(
        base in base_strategy(),
        m1 in mixed_strategy(),
        m2 in mixed_strategy(),
        seed_a in 0u8..10,
        seed_b in 0u8..10,
    ) {
        let ops1 = decode(&m1);
        let ops2 = decode(&m2);
        let d1 = delta_batch(&ops1);
        let d2 = delta_batch(&ops2);

        let truth = ground_truth(&base, &[ops1, ops2]);
        let seeds: Vec<EntityId> = {
            let mut s = vec![
                truth.entity(&format!("e{seed_a}")).unwrap(),
                truth.entity(&format!("e{seed_b}")).unwrap(),
            ];
            s.sort_unstable();
            s.dedup();
            s
        };
        let probes: Vec<EntityId> = seeds
            .iter()
            .copied()
            .chain((10..16u8).filter_map(|i| truth.entity(&format!("e{i}"))))
            .collect();
        let want = snapshot(&GraphHandle::single_with_threads(&truth, 1), &seeds, &probes);

        // single graph: apply the mixed batches, compare, then reclaim
        // the tombstones and compare again
        let mut inc = base_builder(&base).finish();
        inc.apply(&d1);
        inc.apply(&d2);
        prop_assert_eq!(inc.generation(), 2);
        let got = snapshot(&GraphHandle::single_with_threads(&inc, 1), &seeds, &probes);
        assert_snapshots_equal(&got, &want, "single mixed");

        let reclaimed = inc.reclaim();
        prop_assert_eq!(reclaimed.tombstone_count(), 0);
        let got = snapshot(&GraphHandle::single_with_threads(&reclaimed, 1), &seeds, &probes);
        assert_snapshots_equal(&got, &want, "single reclaimed");

        // sharded: route the same batches, compare across shard counts ×
        // thread counts, then compact and compare once more
        for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
            let mut sg = pivote_kg::ShardedGraph::from_graph(
                &base_builder(&base).finish(),
                shards,
            );
            sg.apply(&d1);
            sg.apply(&d2);
            for threads in [1usize, 2] {
                let got = snapshot(
                    &GraphHandle::sharded_with_threads(&sg, threads),
                    &seeds,
                    &probes,
                );
                assert_snapshots_equal(
                    &got,
                    &want,
                    &format!("sharded mixed (shards={shards}, threads={threads})"),
                );
            }
            let compacted = sg.compact(2);
            prop_assert_eq!(compacted.tombstone_count(), 0);
            let got = snapshot(
                &GraphHandle::sharded_with_threads(&compacted, 1),
                &seeds,
                &probes,
            );
            assert_snapshots_equal(
                &got,
                &want,
                &format!("sharded compacted (shards={shards})"),
            );
        }
    }
}

/// The deterministic golden leg: a fixed mixed workload whose receipt
/// counters, tombstone mass and serialized survivors are pinned exactly.
#[test]
fn golden_mixed_workload_is_exact() {
    let base: BaseSpec = (
        vec![
            (0, 0, 1),
            (0, 1, 2),
            (1, 0, 3),
            (2, 2, 4),
            (3, 0, 5),
            (5, 3, 0),
        ],
        vec![(0, 0), (1, 0), (2, 1)],
        vec![(0, 0), (1, 0), (2, 1), (3, 1)],
    );
    let ops1 = vec![
        Op::Triple("e0".into(), "p0".into(), "e6".into()),
        Op::Typed("e6".into(), "t0".into()),
        Op::Label("e6".into(), "Six".into()),
        Op::LiteralI("e6".into(), "lp0".into(), 7),
        Op::LiteralI("e6".into(), "lp0".into(), 7),
        Op::Redirect("Sixx".into(), "e6".into()),
    ];
    let ops2 = vec![
        Op::RetractTriple("e0".into(), "p0".into(), "e1".into()),
        Op::RetractTyped("e1".into(), "t0".into()),
        Op::RetractCategorized("e2".into(), "c1".into()),
        Op::RetractLiteral("e6".into(), "lp0".into(), 7),
        Op::RetractLabel("e6".into(), "Six".into()),
        Op::RetractAlias("Sixx".into(), "e6".into()),
        Op::RetractTriple("e9".into(), "p0".into(), "e9".into()), // never stored
    ];

    let mut inc = base_builder(&base).finish();
    let r1 = inc.apply(&delta_batch(&ops1));
    assert_eq!(r1.added_relations, 1);
    assert_eq!(r1.added_literals, 2);
    let r2 = inc.apply(&delta_batch(&ops2));
    assert_eq!(r2.removed_relations, 1, "one stored triple retracted");
    assert_eq!(r2.removed_literals, 2, "both copies of the literal go");
    // type + category + label + alias
    assert_eq!(r2.removed_assertions, 4);
    assert!(inc.tombstone_count() > 0);

    let truth = ground_truth(&base, &[ops1.clone(), ops2.clone()]);
    let seeds = vec![truth.entity("e0").unwrap()];
    let probes = vec![truth.entity("e0").unwrap(), truth.entity("e6").unwrap()];
    let want = snapshot(
        &GraphHandle::single_with_threads(&truth, 1),
        &seeds,
        &probes,
    );
    let got = snapshot(&GraphHandle::single_with_threads(&inc, 1), &seeds, &probes);
    assert_snapshots_equal(&got, &want, "golden mixed");

    // reclaim drops the tombstones and the serialized survivors are
    // byte-identical to the from-scratch rebuild
    let reclaimed = inc.reclaim();
    assert_eq!(reclaimed.tombstone_count(), 0);
    assert_eq!(
        pivote_kg::serialize(&reclaimed),
        pivote_kg::serialize(&truth),
        "reclaimed survivors must serialize bit-identically to the rebuild"
    );

    // the sharded route lands on the same statements
    for shards in [1usize, 2, 3] {
        let mut sg = pivote_kg::ShardedGraph::from_graph(&base_builder(&base).finish(), shards);
        sg.apply(&delta_batch(&ops1));
        let r2s = sg.apply(&delta_batch(&ops2));
        assert_eq!(r2s.removed_relations, 1, "shards={shards}");
        assert_eq!(r2s.removed_literals, 2, "shards={shards}");
        assert_eq!(r2s.removed_assertions, 4, "shards={shards}");
        assert_eq!(
            pivote_kg::serialize(&sg.compact(1).to_graph()),
            pivote_kg::serialize(&truth),
            "shards={shards}"
        );
    }
}

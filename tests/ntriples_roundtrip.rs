//! The N-Triples substrate: a generated KG serialized and re-parsed must
//! produce identical rankings — loading real DBpedia slices goes through
//! the same code path.

use pivote::prelude::*;
use pivote_kg::{parse, serialize};

#[test]
fn serialized_graph_reloads_with_identical_structure() {
    let kg = generate(&DatagenConfig::tiny());
    let nt = serialize(&kg);
    let kg2 = parse(&nt).expect("round-trip parse");
    assert_eq!(kg2.entity_count(), kg.entity_count());
    assert_eq!(kg2.relation_count(), kg.relation_count());
    assert_eq!(kg2.type_count(), kg.type_count());
    assert_eq!(kg2.category_count(), kg.category_count());
    assert_eq!(kg2.predicate_count(), kg.predicate_count());
}

#[test]
fn rankings_survive_the_roundtrip() {
    let kg = generate(&DatagenConfig::tiny());
    let kg2 = parse(&serialize(&kg)).expect("round-trip parse");

    let film = kg.type_id("Film").unwrap();
    let seed = kg.type_extent(film)[0];
    let seed_name = kg.entity_name(seed).to_owned();
    let seed2 = kg2.entity(&seed_name).expect("seed survives");

    let ex1 = Expander::new(&kg, RankingConfig::default());
    let ex2 = Expander::new(&kg2, RankingConfig::default());
    let r1 = ex1.expand(&SfQuery::from_seeds(vec![seed]), 10, 10);
    let r2 = ex2.expand(&SfQuery::from_seeds(vec![seed2]), 10, 10);

    let names1: Vec<String> = r1
        .entities
        .iter()
        .map(|re| kg.entity_name(re.entity).to_owned())
        .collect();
    let names2: Vec<String> = r2
        .entities
        .iter()
        .map(|re| kg2.entity_name(re.entity).to_owned())
        .collect();
    assert_eq!(
        names1, names2,
        "entity ranking changed across the round-trip"
    );

    let feats1: Vec<String> = r1
        .features
        .iter()
        .map(|rf| rf.feature.display(&kg))
        .collect();
    let feats2: Vec<String> = r2
        .features
        .iter()
        .map(|rf| rf.feature.display(&kg2))
        .collect();
    assert_eq!(
        feats1, feats2,
        "feature ranking changed across the round-trip"
    );
    for (a, b) in r1.features.iter().zip(r2.features.iter()) {
        assert!((a.score - b.score).abs() < 1e-12);
    }
}

#[test]
fn search_survives_the_roundtrip() {
    let kg = generate(&DatagenConfig::tiny());
    let kg2 = parse(&serialize(&kg)).expect("round-trip parse");
    let e1 = SearchEngine::with_defaults(&kg);
    let e2 = SearchEngine::with_defaults(&kg2);
    let film = kg.type_id("Film").unwrap();
    let label = kg.display_name(kg.type_extent(film)[0]);
    let h1: Vec<String> = e1
        .search(&label, 5)
        .into_iter()
        .map(|h| kg.entity_name(h.entity).to_owned())
        .collect();
    let h2: Vec<String> = e2
        .search(&label, 5)
        .into_iter()
        .map(|h| kg2.entity_name(h.entity).to_owned())
        .collect();
    assert_eq!(h1, h2);
}

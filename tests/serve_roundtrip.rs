//! The serving layer end to end, over real TCP connections:
//!
//! - every op answers **bit-identically** to the same call made through
//!   the library (the network hop adds no drift — scores cross the wire
//!   as shortest-round-trip JSON numbers);
//! - protocol abuse (malformed JSON, unknown ops, bad N-Triples,
//!   clients hanging up mid-exchange) produces per-request error
//!   responses and never takes the server down;
//! - concurrent appends and ranked reads observe one serial generation
//!   order;
//! - a graceful shutdown persists the density cache, and a restart from
//!   the warm sidecar answers repeat queries with **zero** `p(π|c)`
//!   recomputes (pinned through the stats probe).

use pivote_core::{
    Expander, GraphHandle, HeatMap, LiveStore, RankingConfig, ReplicaHandle, ReplicaStore, SfQuery,
};
use pivote_explore::{Session, SessionConfig};
use pivote_kg::KnowledgeGraph;
use pivote_serve::{
    num_field, response_ok, scored_list, store_with_warm_state, Client, ServeConfig, Server,
};
use std::sync::Arc;
use std::time::Duration;

fn sample() -> KnowledgeGraph {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    pivote_kg::parse(&nt).expect("sample parses")
}

fn serve_sample() -> Server {
    let store = Arc::new(LiveStore::with_threads(sample(), 1));
    Server::bind("127.0.0.1:0", store, ServeConfig::default()).expect("bind ephemeral port")
}

#[test]
fn every_op_matches_the_library_bit_for_bit() {
    let server = serve_sample();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // library-side ground truth on an identical graph
    let kg = sample();
    let handle = GraphHandle::single_with_threads(&kg, 1);
    let gump = handle.entity("Forrest_Gump").expect("Forrest_Gump");
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let want = expander.expand(&SfQuery::from_seeds(vec![gump]), 10, 10);

    let ranked = client.rank(&["Forrest_Gump"], 10, 10).expect("rank");
    assert!(response_ok(&ranked), "{ranked:?}");
    let got_features = scored_list(&ranked, "features");
    assert_eq!(got_features.len(), want.features.len());
    for (got, want_rf) in got_features.iter().zip(&want.features) {
        assert_eq!(got.0, handle.feature_display(want_rf.feature));
        assert_eq!(
            got.1.to_bits(),
            want_rf.score.to_bits(),
            "feature score drifted"
        );
    }
    let got_entities = scored_list(&ranked, "entities");
    assert_eq!(got_entities.len(), want.entities.len());
    for (got, want_re) in got_entities.iter().zip(&want.entities) {
        assert_eq!(got.0, handle.entity_name(want_re.entity));
        assert_eq!(
            got.1.to_bits(),
            want_re.score.to_bits(),
            "entity score drifted"
        );
    }

    // expand mirrors the entity half
    let expanded = client.expand(&["Forrest_Gump"], None, 10).expect("expand");
    assert!(response_ok(&expanded));
    assert_eq!(scored_list(&expanded, "entities"), got_entities);

    // heatmap levels match the library's quantization exactly
    let axis: Vec<_> = want.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &want.features);
    let heat = client.heatmap(&["Forrest_Gump"], 10, 10).expect("heatmap");
    assert!(response_ok(&heat));
    let serde::Value::Arr(rows) = heat.field("levels").expect("levels") else {
        panic!("levels must be an array");
    };
    assert_eq!(rows.len(), hm.height());
    for (r, row) in rows.iter().enumerate() {
        let serde::Value::Arr(cols) = row else {
            panic!("level rows must be arrays");
        };
        assert_eq!(cols.len(), hm.width());
        for (c, level) in cols.iter().enumerate() {
            let serde::Value::Num(n) = level else {
                panic!("levels must be numbers");
            };
            assert_eq!(*n as u8, hm.level(r, c), "level drifted at ({r},{c})");
        }
    }

    // search equals the session engine's hits
    let session = Session::with_handle(handle.clone(), SessionConfig::default());
    for query in ["forrest gump", "tom hanks", "film"] {
        let want_hits: Vec<(String, f64)> = session
            .search_hits(query, 10)
            .iter()
            .map(|h| (handle.entity_name(h.entity).to_owned(), h.score))
            .collect();
        let got = client.search(query, 10).expect("search");
        assert!(response_ok(&got));
        let got_hits = scored_list(&got, "hits");
        assert_eq!(got_hits.len(), want_hits.len(), "{query}");
        for (g, w) in got_hits.iter().zip(&want_hits) {
            assert_eq!(g.0, w.0, "{query}");
            assert_eq!(
                g.1.to_bits(),
                w.1.to_bits(),
                "{query}: search score drifted"
            );
        }
    }

    // stats reflects the fresh store
    let stats = client.stats().expect("stats");
    assert!(response_ok(&stats));
    assert_eq!(num_field(&stats, "generation"), Some(0));
    assert_eq!(num_field(&stats, "shard_count"), Some(1));
    assert_eq!(
        num_field(&stats, "entities"),
        Some(kg.entity_count() as u64)
    );
}

#[test]
fn malformed_requests_answer_errors_and_keep_the_connection() {
    let server = serve_sample();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for bad in [
        "this is not json",
        r#"{"op":"no_such_op"}"#,
        r#"{"no_op_at_all":1}"#,
        r#"{"op":"rank","seeds":[]}"#,
        r#"{"op":"rank","seeds":["No_Such_Entity_Anywhere"]}"#,
        r#"{"op":"expand","seeds":["Forrest_Gump"],"type":"NoSuchType"}"#,
        r#"{"op":"search","query":"x","k":"ten"}"#,
        r#"{"op":"retract"}"#,
        r#"{"op":"retract","ntriples":"garbage"}"#,
        r#"{"op":"retract","ntriples":7}"#,
    ] {
        let v = client.request(bad).expect(bad);
        assert!(!response_ok(&v), "{bad} must be refused: {v:?}");
        assert!(
            matches!(v.field_opt("error"), serde::Value::Str(_)),
            "{bad} must carry an error message"
        );
    }

    // a bad N-Triples body reports the 1-based line inside the body
    let v = client
        .append("<http://a> <http://p> <http://b> .\nnot a triple\n")
        .expect("append");
    assert!(!response_ok(&v));
    assert_eq!(num_field(&v, "line"), Some(2), "{v:?}");

    // absurd k values are refused at the protocol edge: counts arrive
    // as JSON doubles, and without the ceiling `1e18` saturates `as
    // usize` into a near-usize::MAX top-k budget
    for huge in [
        r#"{"op":"rank","seeds":["Forrest_Gump"],"k_entities":100000000000000000}"#,
        r#"{"op":"rank","seeds":["Forrest_Gump"],"k_features":1e18}"#,
        r#"{"op":"search","query":"film","k":10001}"#,
        r#"{"op":"expand","seeds":["Forrest_Gump"],"k":1e300}"#,
        r#"{"op":"heatmap","seeds":["Forrest_Gump"],"k_entities":99999999999}"#,
    ] {
        let v = client.request(huge).expect(huge);
        assert!(!response_ok(&v), "{huge} must be refused: {v:?}");
        assert!(matches!(v.field_opt("error"), serde::Value::Str(_)));
    }
    // the largest permitted k still answers
    let v = client
        .request(&format!(
            r#"{{"op":"search","query":"film","k":{}}}"#,
            pivote_serve::MAX_REQUEST_COUNT
        ))
        .expect("max k");
    assert!(response_ok(&v), "{v:?}");

    // the same connection still serves after every refusal
    let stats = client.stats().expect("stats after garbage");
    assert!(response_ok(&stats));
    assert_eq!(
        num_field(&stats, "generation"),
        Some(0),
        "no refused request may have mutated the store"
    );
}

#[test]
fn retract_over_tcp_matches_the_library_and_refuses_missing_triples() {
    let server = serve_sample();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let nt = "<http://dbpedia.org/resource/Served_Churn> \
              <http://dbpedia.org/ontology/servedBy> \
              <http://dbpedia.org/resource/Forrest_Gump> .\n";
    let v = client.append(nt).expect("append");
    assert!(response_ok(&v), "{v:?}");
    let v = client.retract(nt).expect("retract");
    assert!(response_ok(&v), "{v:?}");
    assert_eq!(num_field(&v, "removed_relations"), Some(1), "{v:?}");
    assert_eq!(num_field(&v, "generation"), Some(2));

    // the same retract again names nothing stored: a per-request error,
    // never a dropped connection (the no-op apply still ticks the
    // generation, exactly as an empty append would)
    let v = client.retract(nt).expect("retract again");
    assert!(!response_ok(&v), "{v:?}");
    assert!(matches!(v.field_opt("error"), serde::Value::Str(_)));

    // a malformed retract body reports the 1-based line inside the body
    let v = client.retract("not a triple\n").expect("bad retract");
    assert!(!response_ok(&v));
    assert_eq!(num_field(&v, "line"), Some(1), "{v:?}");

    // served state is bit-identical to the library-side replay of the
    // same append + retract
    let mut replay = sample();
    replay.apply(&pivote_kg::parse_into_delta(nt).expect("parses"));
    replay.apply(&pivote_kg::parse_removed_into_delta(nt).expect("parses"));
    let reader = server.store().read();
    assert_eq!(
        pivote_kg::serialize(&reader.backend().to_single()),
        pivote_kg::serialize(&replay),
        "retract over TCP must equal the library-side retract"
    );
    drop(reader);

    // the connection that issued the refused retracts still serves
    let stats = client.stats().expect("stats after refused retracts");
    assert!(response_ok(&stats));
}

#[test]
fn clients_hanging_up_mid_exchange_leave_the_server_serving() {
    let server = serve_sample();
    // several clients connect, fire a request, and vanish without ever
    // reading the response
    for _ in 0..4 {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        use std::io::Write as _;
        let stream = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
        let mut raw = stream;
        raw.write_all(b"{\"op\":\"rank\",\"seeds\":[\"Forrest_Gump\"]}\n")
            .expect("fire");
        drop(raw); // gone before the response is written
        drop(client.stats()); // normal client, also abandoned mid-life
    }
    // a fresh, well-behaved client is unaffected
    let mut client = Client::connect(server.local_addr()).expect("connect after chaos");
    let stats = client.stats().expect("stats");
    assert!(response_ok(&stats));
}

#[test]
fn slow_loris_clients_cannot_pin_the_worker_pool() {
    // ONE worker, a short idle budget: any connection that fails to
    // deliver a complete request line within the budget is dropped,
    // freeing the worker for clients that actually speak
    let store = Arc::new(LiveStore::with_threads(sample(), 1));
    let config = ServeConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", store, config).expect("bind");
    let addr = server.local_addr();

    // attacker 1: connects and never sends a byte
    let silent = std::net::TcpStream::connect(addr).expect("silent connect");
    // attacker 2: trickles a partial request and never the newline —
    // partial progress must NOT reset the idle budget
    let mut trickle = std::net::TcpStream::connect(addr).expect("trickle connect");
    use std::io::Write as _;
    trickle.write_all(b"{\"op\":\"sta").expect("partial bytes");

    // before the fix the single worker blocked forever in read_line on
    // the silent connection and this client would never be answered
    let mut client = Client::connect(addr).expect("connect behind the loris");
    let stats = client.stats().expect("stats despite the loris");
    assert!(response_ok(&stats));
    drop(silent);
    drop(trickle);

    // pauses shorter than the budget never kill a well-behaved client:
    // the budget restarts with every complete request line
    std::thread::sleep(Duration::from_millis(120));
    let stats = client.stats().expect("stats after a pause");
    assert!(response_ok(&stats));
}

#[test]
fn a_read_only_replica_server_tails_the_leader_over_tcp() {
    let wal_path = std::env::temp_dir().join(format!(
        "pivote_serve_replica_{}_{:?}.wal",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&wal_path);

    // leader: a store recording every write in the delta log (the
    // serving layer rides the exact same write path)
    let leader = Arc::new(LiveStore::with_threads(sample(), 1));
    leader.log_to(&wal_path).expect("leader logs");

    // follower: a read-only server over a ReplicaStore tailing the log
    let replica = ReplicaStore::open(sample(), 1, &wal_path).expect("replica opens");
    let tailer = ReplicaHandle::spawn(replica, Duration::from_millis(5));
    let config = ServeConfig {
        read_only: true,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(tailer.store()), config).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // writes are refused over the wire with a per-request error…
    let nt = "<http://dbpedia.org/resource/Replica_Visible> \
              <http://dbpedia.org/ontology/servedBy> \
              <http://dbpedia.org/resource/Forrest_Gump> .\n";
    for refused in [client.append(nt).expect("append answered"), {
        client.retract(nt).expect("retract answered")
    }] {
        assert!(!response_ok(&refused), "{refused:?}");
        let serde::Value::Str(message) = refused.field_opt("error") else {
            panic!("refusal must carry an error message: {refused:?}");
        };
        assert!(message.contains("read-only"), "{message}");
    }
    // …and stats advertises the mode
    let stats = client.stats().expect("stats");
    assert!(
        matches!(stats.field_opt("read_only"), serde::Value::Bool(true)),
        "{stats:?}"
    );

    // a leader write ships through the log and becomes a served read
    let delta = pivote_kg::parse_into_delta(nt).expect("parses");
    leader.append(&delta).expect("leader append");
    let target = leader.wal_generation().expect("leader logs generations");
    assert!(
        tailer.wait_for_generation(target, Duration::from_secs(10)),
        "follower never caught up: {:?}",
        tailer.last_error()
    );
    let stats = client.stats().expect("stats after sync");
    assert_eq!(
        num_field(&stats, "entities"),
        Some(sample().entity_count() as u64 + 1),
        "the shipped entity must be visible over TCP"
    );

    // served follower state is fingerprint-equal to the leader
    let leader_fp = {
        let reader = leader.read();
        reader.backend().fingerprint()
    };
    let follower_fp = {
        let reader = tailer.store().read();
        reader.backend().fingerprint()
    };
    assert_eq!(follower_fp, leader_fp, "replica drifted from the leader");
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn concurrent_appends_and_reads_observe_one_serial_order() {
    let server = serve_sample();
    let addr = server.local_addr();
    let appends_per_writer = 8;
    let writers = 3;

    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("writer connects");
                for i in 0..appends_per_writer {
                    let nt = format!(
                        "<http://dbpedia.org/resource/Served_{w}_{i}> \
                         <http://dbpedia.org/ontology/servedBy> \
                         <http://dbpedia.org/resource/Forrest_Gump> .\n"
                    );
                    let v = client.append(&nt).expect("append");
                    assert!(response_ok(&v), "{v:?}");
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut last_generation = 0;
                for _ in 0..12 {
                    let ranked = client.rank(&["Forrest_Gump"], 5, 5).expect("rank");
                    assert!(response_ok(&ranked));
                    let generation = num_field(&ranked, "generation").expect("generation");
                    assert!(
                        generation >= last_generation,
                        "generations ran backwards: {last_generation} then {generation}"
                    );
                    last_generation = generation;
                }
            });
        }
    });

    // quiescent: every append landed, exactly once, in one serial order
    let total = (writers * appends_per_writer) as u64;
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(num_field(&stats, "generation"), Some(total));

    // the server state equals a library-only replay of the same deltas
    // (appends commute here: each adds a disjoint entity + one edge)
    let mut replay = sample();
    for w in 0..writers {
        for i in 0..appends_per_writer {
            let mut d = pivote_kg::DeltaBatch::new();
            d.triple(format!("Served_{w}_{i}"), "servedBy", "Forrest_Gump");
            replay.apply(&d);
        }
    }
    assert_eq!(
        num_field(&stats, "entities"),
        Some(replay.entity_count() as u64)
    );
    let reader = server.store().read();
    // line-set equality: the appends commute, so the interleaving only
    // permutes entity insertion order, never the triple set
    let mut got: Vec<&str> = Vec::new();
    let got_nt = pivote_kg::serialize(&reader.backend().to_single());
    got.extend(got_nt.lines());
    got.sort_unstable();
    let want_nt = pivote_kg::serialize(&replay);
    let mut want: Vec<&str> = want_nt.lines().collect();
    want.sort_unstable();
    assert_eq!(got, want, "served state must equal the library-only replay");
}

#[test]
fn restart_from_the_warm_sidecar_recomputes_nothing() {
    let warm_path = std::env::temp_dir().join(format!(
        "pivote_serve_warm_{}_{:?}.warm",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&warm_path);

    // first life: serve cold, warm the cache through real queries, stop
    // gracefully
    let store = Arc::new(LiveStore::with_threads(sample(), 1));
    let config = ServeConfig {
        warm_path: Some(warm_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", store, config.clone()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let first = client.rank(&["Forrest_Gump"], 10, 10).expect("rank");
    assert!(response_ok(&first));
    let stats = client.stats().expect("stats");
    let warmed = num_field(&stats, "cached_probabilities").expect("probe");
    assert!(warmed > 0, "queries must fill the density cache");
    let ack = client.shutdown().expect("shutdown ack");
    assert!(response_ok(&ack));
    server.wait_shutdown();
    let report = server.shutdown();
    assert_eq!(report.warm_densities_saved, Some(warmed as usize));

    // second life: a new process would reopen the graph and the sidecar
    let (store, warm) = store_with_warm_state(sample(), 1, &warm_path);
    assert!(warm, "the sidecar must match the reopened graph");
    let server = Server::bind("127.0.0.1:0", store, config).expect("rebind");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        num_field(&stats, "cached_probabilities"),
        Some(warmed),
        "every density must be back before any query runs"
    );
    let again = client.rank(&["Forrest_Gump"], 10, 10).expect("rank again");
    assert!(response_ok(&again));
    // bit-identical answers out of the warm cache…
    assert_eq!(
        scored_list(&again, "features"),
        scored_list(&first, "features")
    );
    assert_eq!(
        scored_list(&again, "entities"),
        scored_list(&first, "entities")
    );
    // …and zero recomputes: the repeat query needed no density that the
    // sidecar did not already carry
    let stats = client.stats().expect("stats after warm query");
    assert_eq!(
        num_field(&stats, "cached_probabilities"),
        Some(warmed),
        "a warm restart must not recompute (or add) a single density"
    );
    let _ = std::fs::remove_file(&warm_path);
}

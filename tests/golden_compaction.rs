//! Golden-file regression test for shard compaction.
//!
//! `data/sample.nt` is ingested in **four quarters** — the first quarter
//! parsed into a base graph and partitioned, the remaining three
//! appended as [`DeltaBatch`](pivote_kg::DeltaBatch)es through
//! `ShardedGraph::apply` (each quarter that mints entities appends a
//! trailing shard) — then the grown partition is **compacted to 2
//! shards** and the rankings must reproduce
//! `tests/golden/sample_rankings.json` **exactly**: the same golden file
//! the full-parse backends (`golden_sharded.rs`) and the append path
//! (`golden_incremental.rs`) are held to. Any drift in the union
//! rebuild, the re-partition or the generation handling fails this test
//! with a readable diff.
//!
//! `PIVOTE_GOLDEN_WRITE=1` regenerates the golden from the full parse
//! (same bytes the sibling golden tests write) and then still checks the
//! compacted path against it, so regeneration covers this path too.

use pivote_core::{Expander, GraphHandle, HeatMap, RankingConfig, SfQuery};
use pivote_kg::{shard_counts_from_env, EntityId, KnowledgeGraph, ShardedGraph};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sample_rankings.json"
);

/// Mirror of the golden schema in `golden_sharded.rs`.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Golden {
    seeds: Vec<String>,
    features: Vec<(String, f64)>,
    entities: Vec<(String, f64)>,
    heatmap_levels: Vec<Vec<u8>>,
    heatmap_values: Vec<Vec<f64>>,
}

fn snapshot(handle: &GraphHandle<'_>) -> Golden {
    let gump = handle.entity("Forrest_Gump").expect("Forrest_Gump");
    let expander = Expander::with_handle(handle.clone(), RankingConfig::default());
    let res = expander.expand(&SfQuery::from_seeds(vec![gump]), 10, 10);
    let axis: Vec<EntityId> = res.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &res.features);
    Golden {
        seeds: vec![handle.entity_name(gump).to_owned()],
        features: res
            .features
            .iter()
            .map(|rf| (handle.feature_display(rf.feature), rf.score))
            .collect(),
        entities: res
            .entities
            .iter()
            .map(|re| (handle.entity_name(re.entity).to_owned(), re.score))
            .collect(),
        heatmap_levels: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.level(row, col)).collect())
            .collect(),
        heatmap_values: (0..hm.height())
            .map(|row| (0..hm.width()).map(|col| hm.value(row, col)).collect())
            .collect(),
    }
}

/// The bundled sample split at statement boundaries into four quarters:
/// the first for the base parse, the rest appended as deltas.
fn quarters() -> (KnowledgeGraph, Vec<pivote_kg::DeltaBatch>) {
    let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
        .expect("bundled sample exists");
    let lines: Vec<&str> = nt.lines().collect();
    let chunk = lines.len().div_ceil(4);
    let base = pivote_kg::parse(&lines[..chunk].join("\n")).expect("first quarter parses");
    let deltas = lines[chunk..]
        .chunks(chunk)
        .map(|c| pivote_kg::parse_into_delta(&c.join("\n")).expect("quarter parses as a delta"))
        .collect();
    (base, deltas)
}

#[test]
fn golden_rankings_reproduce_through_the_compaction_path() {
    // regeneration covers the compacted path too: write from the full
    // parse (identical bytes to the sibling golden tests' regen), then
    // verify the append-then-compact path against the file
    if std::env::var("PIVOTE_GOLDEN_WRITE").is_ok() {
        let nt = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample.nt"))
            .expect("bundled sample exists");
        let kg = pivote_kg::parse(&nt).expect("sample parses");
        let full = snapshot(&GraphHandle::single_with_threads(&kg, 1));
        std::fs::write(
            GOLDEN_PATH,
            serde_json::to_string_pretty(&full).expect("golden serializes"),
        )
        .expect("golden written");
    }
    let golden_json = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists — regenerate with PIVOTE_GOLDEN_WRITE=1");
    let golden: Golden = serde_json::from_str(&golden_json).expect("golden parses");

    for shards in shard_counts_from_env(&[1, 2, 3, 4]) {
        let (base, deltas) = quarters();
        let mut sg = ShardedGraph::from_graph(&base, shards);
        for d in &deltas {
            sg.apply(d);
        }
        assert!(
            sg.trailing_shard_count() > 0,
            "later quarters must mint entities (trailing shards)"
        );
        let generation_before = sg.generation();
        let sg = sg.compact(2);
        assert_eq!(sg.shard_count(), 2, "compacted to 2 shards");
        assert_eq!(sg.trailing_shard_count(), 0);
        assert_eq!(sg.generation(), generation_before + 1);
        for threads in [1, 2] {
            let got = snapshot(&GraphHandle::sharded_with_threads(&sg, threads));
            assert_eq!(
                got, golden,
                "append-four-quarters-then-compact (initial shards={shards}, \
                 threads={threads}) drifted from the golden rankings"
            );
        }
    }
}

#[test]
fn golden_rankings_reproduce_through_the_concurrent_live_compaction_path() {
    // the same four-quarter growth, driven through the unified live
    // store with the off-lock concurrent compaction (rebuild off the
    // write lock, generation-validated pointer swap): the rankings on
    // both sides of the swap must still reproduce the golden file byte
    // for byte — concurrent compaction is as answer-preserving as the
    // offline pass
    let golden_json = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists — regenerate with PIVOTE_GOLDEN_WRITE=1");
    let golden: Golden = serde_json::from_str(&golden_json).expect("golden parses");

    for shards in shard_counts_from_env(&[1, 3]) {
        let (base, deltas) = quarters();
        let live = pivote_core::LiveStore::with_threads(ShardedGraph::from_graph(&base, shards), 1);
        for d in &deltas {
            live.append(d).expect("store healthy");
        }
        {
            let reader = live.read();
            assert!(reader.graph().trailing_shard_count() > 0);
            let pre = snapshot(&reader.handle());
            assert_eq!(pre, golden, "pre-swap rankings (shards={shards})");
        }
        let warm = live.cache().cached_probability_count();
        let receipt = live.compact_concurrent(2).expect("store healthy");
        assert_eq!(receipt.shards_after, 2);
        assert_eq!(receipt.attempts, 1, "no contention, no retries");
        assert_eq!(
            live.cache().cached_probability_count(),
            warm,
            "the swap must not drop any surviving density"
        );
        let reader = live.read();
        assert_eq!(reader.graph().trailing_shard_count(), 0);
        let post = snapshot(&reader.handle());
        assert_eq!(
            post, golden,
            "post-swap rankings (shards={shards}) drifted from the golden file"
        );
    }
}

//! Failure injection: malformed input, degenerate graphs and out-of-range
//! queries must degrade gracefully, never panic.

use pivote::prelude::*;
use pivote_core::{Direction, LiveShardedGraph, RankedEntity};
use pivote_kg::{parse, DeltaBatch, ShardedGraph};
use std::sync::Arc;

#[test]
fn malformed_ntriples_report_line_numbers() {
    let cases = [
        ("<http://s> <http://p> <http://o>", "'.'"),
        // the unterminated IRI swallows the predicate; the parser notices
        // when the object position has no term left
        ("<http://s <http://p> <http://o> .", "term"),
        (r#"<http://s> <http://p> "open ."#, "unterminated"),
        (r#""lit" <http://p> <http://o> ."#, "subject"),
        (r#"<http://s> "lit" <http://o> ."#, "predicate"),
        (r#"<http://s> <http://p> "bad\z" ."#, "escape"),
        ("<http://s> <http://p> .", "term"),
        ("<> <http://p> <http://o> .", "empty"),
    ];
    for (src, needle) in cases {
        let err = parse(src).expect_err(src);
        assert_eq!(err.line, 1, "wrong line for {src:?}");
        assert!(
            err.message.to_lowercase().contains(&needle.to_lowercase()),
            "error {:?} should mention {needle:?} for {src:?}",
            err.message
        );
    }
    // good lines around a bad one: error points at the right line
    let doc = "<http://a> <http://p> <http://b> .\nnot a triple\n";
    let err = parse(doc).unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn graph_without_categories_still_ranks() {
    // Error tolerance falls back to types; without either, exact matches
    // still work.
    let mut b = KgBuilder::new();
    let f1 = b.entity("f1");
    let f2 = b.entity("f2");
    let a = b.entity("A");
    let p = b.predicate("starring");
    b.triple(f1, p, a);
    b.triple(f2, p, a);
    let kg = b.finish();
    let ex = Expander::new(&kg, RankingConfig::default());
    let res = ex.expand(&SfQuery::from_seeds(vec![f1]), 5, 5);
    assert_eq!(res.entities.len(), 1);
    assert_eq!(res.entities[0].entity, f2);
}

#[test]
fn singleton_and_empty_graphs() {
    let empty = KgBuilder::new().finish();
    let ex = Expander::new(&empty, RankingConfig::default());
    assert!(ex.expand(&SfQuery::default(), 5, 5).entities.is_empty());

    let mut b = KgBuilder::new();
    let lone = b.entity("lonely");
    let kg = b.finish();
    let ex = Expander::new(&kg, RankingConfig::default());
    let res = ex.expand(&SfQuery::from_seeds(vec![lone]), 5, 5);
    assert!(res.entities.is_empty());
    assert!(res.features.is_empty());
    // search over a label-less graph
    let engine = SearchEngine::with_defaults(&kg);
    assert!(!engine.search("lonely", 5).is_empty());
}

#[test]
fn feature_with_empty_extent_scores_zero() {
    let kg = generate(&DatagenConfig::tiny());
    let e = kg.entity_ids().next().unwrap();
    // a predicate the entity does not have in this direction
    let p = kg.predicate("starring").unwrap();
    let sf = SemanticFeature {
        anchor: e,
        predicate: p,
        direction: Direction::FromAnchor,
    };
    if sf.extent(&kg).is_empty() {
        let ranker = Ranker::new(&kg, RankingConfig::default());
        assert_eq!(ranker.discriminability(sf), 0.0);
    }
    // a conjunctive query with disjoint extents returns nothing
    let film = kg.type_id("Film").unwrap();
    let f = kg.type_extent(film)[0];
    let director = kg.predicate("director").unwrap();
    let d1 = kg.objects(f, director)[0];
    let impossible = SfQuery::from_features(vec![
        SemanticFeature::to_anchor(d1, director),
        SemanticFeature::to_anchor(f, director), // nothing has a film as director
    ]);
    let ex = Expander::new(&kg, RankingConfig::default());
    assert!(ex.expand(&impossible, 5, 5).entities.is_empty());
}

#[test]
fn session_survives_nonsense_actions() {
    let kg = generate(&DatagenConfig::tiny());
    let mut s = Session::with_defaults(&kg);
    // revisit before any history
    s.apply(UserAction::RevisitQuery { index: 5 });
    assert!(s.view().query.is_empty());
    // remove things that were never added
    let e = kg.entity_ids().next().unwrap();
    s.apply(UserAction::RemoveSeed { entity: e });
    // empty keyword query
    s.submit_keywords("");
    assert!(s.view().entities.is_empty());
    // stopword-only keyword query
    s.submit_keywords("the of and");
    assert!(s.view().entities.is_empty());
    // lookup still works afterwards
    s.lookup(e);
    assert!(s.view().focus.is_some());
}

#[test]
fn compaction_racing_queries_never_tears() {
    // readers hammer a grown LiveShardedGraph while a compactor swaps in
    // the re-partitioned graph; every reader must see either the old or
    // the new generation — never a torn view — and because compaction is
    // answer-preserving, every reader's rankings must equal the union's
    // regardless of which side of the swap its read guard landed on
    let kg = generate(&DatagenConfig::tiny());
    let film = kg.type_id("Film").unwrap();
    let seeds: Vec<EntityId> = kg.type_extent(film)[..2].to_vec();
    let cfg = RankingConfig::default();

    let live = Arc::new(LiveShardedGraph::with_threads(
        ShardedGraph::from_graph(&kg, 2),
        1,
    ));
    // grow four trailing shards, each minting a film wired to a seed
    let mut deltas: Vec<DeltaBatch> = Vec::new();
    for i in 0..4 {
        let mut d = DeltaBatch::new();
        d.triple(
            format!("Raced_Compaction_Film_{i}"),
            "starring",
            kg.entity_name(seeds[i % 2]).to_owned(),
        )
        .typed(format!("Raced_Compaction_Film_{i}"), "Film");
        live.append(&d);
        deltas.push(d);
    }
    assert_eq!(live.shard_count(), 6);
    let gen_before = live.generation();

    // ground truth: the from-scratch union — valid before AND after the
    // swap, which is exactly what makes the race assertable
    let mut union = generate(&DatagenConfig::tiny());
    for d in &deltas {
        union.apply(d);
    }
    let fresh = pivote_core::QueryContext::with_threads(&union, 1);
    let want_f = fresh.rank_features(&cfg, &seeds);
    let want_e = fresh.rank_entities(&cfg, &seeds, &want_f);
    let assert_matches = |entities: &[RankedEntity], what: &str| {
        assert_eq!(entities.len(), want_e.len(), "{what}");
        for (a, b) in entities.iter().zip(&want_e) {
            assert_eq!(a.entity, b.entity, "{what}");
            assert!((a.score - b.score).abs() == 0.0, "{what}: score tore");
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let live = Arc::clone(&live);
            let seeds = seeds.clone();
            let want_f = &want_f;
            let assert_matches = &assert_matches;
            scope.spawn(move || {
                for _ in 0..10 {
                    let reader = live.read();
                    let generation = reader.generation();
                    assert!(
                        generation == gen_before || generation == gen_before + 1,
                        "readers see the old or the new generation, nothing else"
                    );
                    let ctx = reader.ctx();
                    let features = ctx.rank_features(&cfg, &seeds);
                    assert_eq!(&features, want_f, "features tore during the swap");
                    let entities = ctx.rank_entities(&cfg, &seeds, &features);
                    assert_matches(&entities, "racing reader");
                }
            });
        }
        let live = Arc::clone(&live);
        scope.spawn(move || {
            let receipt = live.compact_in_place(2);
            assert_eq!(receipt.shards_before, 6);
            assert_eq!(receipt.trailing_before, 4);
        });
    });

    // converged: the swap landed, and the quiescent answer is the union's
    assert_eq!(live.generation(), gen_before + 1);
    assert_eq!(live.shard_count(), 2);
    let reader = live.read();
    let ctx = reader.ctx();
    let features = ctx.rank_features(&cfg, &seeds);
    assert_eq!(features, want_f);
    assert_matches(&ctx.rank_entities(&cfg, &seeds, &features), "post-swap");
}

#[test]
fn unknown_names_resolve_to_none_not_panic() {
    let kg = generate(&DatagenConfig::tiny());
    assert!(kg.entity("No_Such_Entity").is_none());
    assert!(kg.predicate("noSuchPredicate").is_none());
    assert!(kg.type_id("NoSuchType").is_none());
    assert!(kg.category_id("No such category").is_none());
}

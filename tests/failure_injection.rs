//! Failure injection: malformed input, degenerate graphs and out-of-range
//! queries must degrade gracefully, never panic.

use pivote::prelude::*;
use pivote_core::{Direction, LiveStore, RankedEntity};
use pivote_kg::{parse, DeltaBatch, ShardedGraph};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn malformed_ntriples_report_line_numbers() {
    let cases = [
        ("<http://s> <http://p> <http://o>", "'.'"),
        // the unterminated IRI swallows the predicate; the parser notices
        // when the object position has no term left
        ("<http://s <http://p> <http://o> .", "term"),
        (r#"<http://s> <http://p> "open ."#, "unterminated"),
        (r#""lit" <http://p> <http://o> ."#, "subject"),
        (r#"<http://s> "lit" <http://o> ."#, "predicate"),
        (r#"<http://s> <http://p> "bad\z" ."#, "escape"),
        ("<http://s> <http://p> .", "term"),
        ("<> <http://p> <http://o> .", "empty"),
    ];
    for (src, needle) in cases {
        let err = parse(src).expect_err(src);
        assert_eq!(err.line, 1, "wrong line for {src:?}");
        assert!(
            err.message.to_lowercase().contains(&needle.to_lowercase()),
            "error {:?} should mention {needle:?} for {src:?}",
            err.message
        );
    }
    // good lines around a bad one: error points at the right line
    let doc = "<http://a> <http://p> <http://b> .\nnot a triple\n";
    let err = parse(doc).unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn graph_without_categories_still_ranks() {
    // Error tolerance falls back to types; without either, exact matches
    // still work.
    let mut b = KgBuilder::new();
    let f1 = b.entity("f1");
    let f2 = b.entity("f2");
    let a = b.entity("A");
    let p = b.predicate("starring");
    b.triple(f1, p, a);
    b.triple(f2, p, a);
    let kg = b.finish();
    let ex = Expander::new(&kg, RankingConfig::default());
    let res = ex.expand(&SfQuery::from_seeds(vec![f1]), 5, 5);
    assert_eq!(res.entities.len(), 1);
    assert_eq!(res.entities[0].entity, f2);
}

#[test]
fn singleton_and_empty_graphs() {
    let empty = KgBuilder::new().finish();
    let ex = Expander::new(&empty, RankingConfig::default());
    assert!(ex.expand(&SfQuery::default(), 5, 5).entities.is_empty());

    let mut b = KgBuilder::new();
    let lone = b.entity("lonely");
    let kg = b.finish();
    let ex = Expander::new(&kg, RankingConfig::default());
    let res = ex.expand(&SfQuery::from_seeds(vec![lone]), 5, 5);
    assert!(res.entities.is_empty());
    assert!(res.features.is_empty());
    // search over a label-less graph
    let engine = SearchEngine::with_defaults(&kg);
    assert!(!engine.search("lonely", 5).is_empty());
}

#[test]
fn feature_with_empty_extent_scores_zero() {
    let kg = generate(&DatagenConfig::tiny());
    let e = kg.entity_ids().next().unwrap();
    // a predicate the entity does not have in this direction
    let p = kg.predicate("starring").unwrap();
    let sf = SemanticFeature {
        anchor: e,
        predicate: p,
        direction: Direction::FromAnchor,
    };
    if sf.extent(&kg).is_empty() {
        let ranker = Ranker::new(&kg, RankingConfig::default());
        assert_eq!(ranker.discriminability(sf), 0.0);
    }
    // a conjunctive query with disjoint extents returns nothing
    let film = kg.type_id("Film").unwrap();
    let f = kg.type_extent(film)[0];
    let director = kg.predicate("director").unwrap();
    let d1 = kg.objects(f, director)[0];
    let impossible = SfQuery::from_features(vec![
        SemanticFeature::to_anchor(d1, director),
        SemanticFeature::to_anchor(f, director), // nothing has a film as director
    ]);
    let ex = Expander::new(&kg, RankingConfig::default());
    assert!(ex.expand(&impossible, 5, 5).entities.is_empty());
}

#[test]
fn session_survives_nonsense_actions() {
    let kg = generate(&DatagenConfig::tiny());
    let mut s = Session::with_defaults(&kg);
    // revisit before any history
    s.apply(UserAction::RevisitQuery { index: 5 });
    assert!(s.view().query.is_empty());
    // remove things that were never added
    let e = kg.entity_ids().next().unwrap();
    s.apply(UserAction::RemoveSeed { entity: e });
    // empty keyword query
    s.submit_keywords("");
    assert!(s.view().entities.is_empty());
    // stopword-only keyword query
    s.submit_keywords("the of and");
    assert!(s.view().entities.is_empty());
    // lookup still works afterwards
    s.lookup(e);
    assert!(s.view().focus.is_some());
}

#[test]
fn compaction_racing_queries_never_tears() {
    // readers hammer a grown live store while a concurrent compactor
    // rebuilds off-lock and swaps in the re-partitioned graph; every
    // reader must see either the old or the new generation — never a
    // torn view — and because compaction is answer-preserving, every
    // reader's rankings must equal the union's regardless of which side
    // of the swap its read guard landed on
    let kg = generate(&DatagenConfig::tiny());
    let film = kg.type_id("Film").unwrap();
    let seeds: Vec<EntityId> = kg.type_extent(film)[..2].to_vec();
    let cfg = RankingConfig::default();

    let live = Arc::new(LiveStore::with_threads(ShardedGraph::from_graph(&kg, 2), 1));
    // grow four trailing shards, each minting a film wired to a seed
    let mut deltas: Vec<DeltaBatch> = Vec::new();
    for i in 0..4 {
        let mut d = DeltaBatch::new();
        d.triple(
            format!("Raced_Compaction_Film_{i}"),
            "starring",
            kg.entity_name(seeds[i % 2]).to_owned(),
        )
        .typed(format!("Raced_Compaction_Film_{i}"), "Film");
        live.append(&d).expect("store healthy");
        deltas.push(d);
    }
    assert_eq!(live.shard_count(), 6);
    let gen_before = live.generation();

    // ground truth: the from-scratch union — valid before AND after the
    // swap, which is exactly what makes the race assertable
    let mut union = generate(&DatagenConfig::tiny());
    for d in &deltas {
        union.apply(d);
    }
    let fresh = pivote_core::QueryContext::with_threads(&union, 1);
    let want_f = fresh.rank_features(&cfg, &seeds);
    let want_e = fresh.rank_entities(&cfg, &seeds, &want_f);
    let assert_matches = |entities: &[RankedEntity], what: &str| {
        assert_eq!(entities.len(), want_e.len(), "{what}");
        for (a, b) in entities.iter().zip(&want_e) {
            assert_eq!(a.entity, b.entity, "{what}");
            assert!((a.score - b.score).abs() == 0.0, "{what}: score tore");
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let live = Arc::clone(&live);
            let seeds = seeds.clone();
            let want_f = &want_f;
            let assert_matches = &assert_matches;
            scope.spawn(move || {
                for _ in 0..10 {
                    let reader = live.read();
                    let generation = reader.generation();
                    assert!(
                        generation == gen_before || generation == gen_before + 1,
                        "readers see the old or the new generation, nothing else"
                    );
                    let ctx = reader.ctx();
                    let features = ctx.rank_features(&cfg, &seeds);
                    assert_eq!(&features, want_f, "features tore during the swap");
                    let entities = ctx.rank_entities(&cfg, &seeds, &features);
                    assert_matches(&entities, "racing reader");
                }
            });
        }
        let live = Arc::clone(&live);
        scope.spawn(move || {
            let receipt = live.compact_concurrent(2).expect("store healthy");
            assert_eq!(receipt.shards_before, 6);
            assert_eq!(receipt.trailing_before, 4);
        });
    });

    // converged: the swap landed, and the quiescent answer is the union's
    assert_eq!(live.generation(), gen_before + 1);
    assert_eq!(live.shard_count(), 2);
    let reader = live.read();
    let ctx = reader.ctx();
    let features = ctx.rank_features(&cfg, &seeds);
    assert_eq!(features, want_f);
    assert_matches(&ctx.rank_entities(&cfg, &seeds, &features), "post-swap");
}

/// Decode a delta spec: edges over `e0..e11` (e8..e11 are brand-new
/// entities that mint a trailing shard) × predicates `p0..p3`.
fn race_delta(spec: &[(u8, u8, u8)]) -> DeltaBatch {
    let mut d = DeltaBatch::new();
    for &(s, p, o) in spec {
        d.triple(
            format!("e{}", s % 12),
            format!("p{}", p % 4),
            format!("e{}", o % 12),
        );
    }
    d
}

/// The base graph for the swap-race property: `e0..e7` plus the spec'd
/// edges over them.
fn race_base(edges: &[(u8, u8, u8)]) -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    for i in 0..8u8 {
        b.entity(&format!("e{i}"));
    }
    for &(s, p, o) in edges {
        let s = b.entity(&format!("e{}", s % 8));
        let p = b.predicate(&format!("p{}", p % 4));
        let o = b.entity(&format!("e{}", o % 8));
        b.triple(s, p, o);
    }
    b.finish()
}

fn race_rankings(
    kg: &KnowledgeGraph,
    seeds: &[EntityId],
) -> (Vec<RankedFeature>, Vec<RankedEntity>) {
    let cfg = RankingConfig::default();
    let ctx = pivote_core::QueryContext::with_threads(kg, 1);
    let f = ctx.rank_features(&cfg, seeds);
    let e = ctx.rank_entities(&cfg, seeds, &f);
    (f, e)
}

fn assert_rankings(
    got: (&[RankedFeature], &[RankedEntity]),
    want: (&[RankedFeature], &[RankedEntity]),
    what: &str,
) {
    assert_eq!(got.0, want.0, "{what}: features");
    assert_eq!(got.1.len(), want.1.len(), "{what}: entity count");
    for (a, b) in got.1.iter().zip(want.1) {
        assert_eq!(a.entity, b.entity, "{what}: entity order");
        assert!((a.score - b.score).abs() == 0.0, "{what}: score tore");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Appends racing `compact_concurrent`: the hook fires between each
    /// attempt's off-lock rebuild and its swap — mid-compaction — where
    /// the test (a) probes that a query issued right there completes
    /// against the *pre-swap* generation without waiting (the hook runs
    /// on the compactor's own thread, so if the rebuild held either
    /// lock, the probe's read guard — and the injected append's write
    /// guard — would deadlock rather than proceed; the generation
    /// assertion additionally pins that the reader was admitted before
    /// the swap), and (b) injects an append, so the first rebuild is
    /// guaranteed to lose the race and retry. Rankings must equal the
    /// from-scratch union on both sides of the swap, and the losing
    /// compaction must land on the grown state. (The wall-clock
    /// blocked-time comparison against the stop-the-world pass lives in
    /// `exp_scaling`'s BENCH_5 sweep, where a reader thread races the
    /// rebuild itself.)
    #[test]
    fn prop_appends_racing_concurrent_compaction(
        base_edges in proptest::collection::vec((0u8..8, 0u8..4, 0u8..8), 1..24),
        d1 in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 1..12),
        d2 in proptest::collection::vec((0u8..12, 0u8..4, 0u8..12), 1..12),
    ) {
        let delta1 = race_delta(&d1);
        let delta2 = race_delta(&d2);
        let seeds: Vec<EntityId> = {
            let kg = race_base(&base_edges);
            vec![kg.entity("e0").unwrap(), kg.entity("e1").unwrap()]
        };

        // ground truths: from-scratch apply unions at both swap sides
        let union1 = {
            let mut kg = race_base(&base_edges);
            kg.apply(&delta1);
            kg
        };
        let union2 = {
            let mut kg = race_base(&base_edges);
            kg.apply(&delta1);
            kg.apply(&delta2);
            kg
        };
        let want1 = race_rankings(&union1, &seeds);
        let want2 = race_rankings(&union2, &seeds);

        let live = LiveStore::with_threads(
            ShardedGraph::from_graph(&race_base(&base_edges), 2),
            1,
        );
        live.append(&delta1).expect("store healthy");
        let mut hook_calls = 0u32;
        let receipt_result = live.compact_concurrent_hooked(2, |base_generation| {
            hook_calls += 1;
            // mid-compaction probe: this closure runs on the compactor's
            // thread, so merely *acquiring* this read guard (and the
            // write guard of the append below) proves the rebuild holds
            // no lock here — a rebuild-under-lock regression deadlocks
            // this line; the generation proves the reader was admitted
            // before the swap, i.e. it never queued behind the rebuild
            let reader = live.read();
            assert_eq!(
                reader.generation(),
                base_generation,
                "the probe reader must land on the pre-swap snapshot"
            );
            let cfg = RankingConfig::default();
            let ctx = reader.ctx();
            let f = ctx.rank_features(&cfg, &seeds);
            let e = ctx.rank_entities(&cfg, &seeds, &f);
            let want = if hook_calls == 1 { &want1 } else { &want2 };
            assert_rankings((&f, &e), (&want.0, &want.1), "mid-compaction query");
            drop(reader);
            if hook_calls == 1 {
                // inject the racing append: the rebuild this hook
                // interrupted is now stale and must be discarded
                live.append(&delta2).expect("store healthy");
            }
        });
        let receipt = receipt_result.expect("store healthy");
        prop_assert_eq!(receipt.attempts, 2, "the losing rebuild must retry");
        prop_assert_eq!(hook_calls, 2);
        prop_assert_eq!(receipt.shards_after, 2);
        prop_assert_eq!(live.shard_count(), 2);
        prop_assert_eq!(live.generation(), 3, "2 appends + 1 winning compaction");

        // post-swap: the compacted store answers exactly the full union
        let reader = live.read();
        let cfg = RankingConfig::default();
        let ctx = reader.ctx();
        let f = ctx.rank_features(&cfg, &seeds);
        let e = ctx.rank_entities(&cfg, &seeds, &f);
        assert_rankings((&f, &e), (&want2.0, &want2.1), "post-swap query");
    }
}

#[test]
fn unknown_names_resolve_to_none_not_panic() {
    let kg = generate(&DatagenConfig::tiny());
    assert!(kg.entity("No_Such_Entity").is_none());
    assert!(kg.predicate("noSuchPredicate").is_none());
    assert!(kg.type_id("NoSuchType").is_none());
    assert!(kg.category_id("No such category").is_none());
}

/// A writer panicking mid-append poisons the store: later writes are
/// refused with a typed error instead of panicking their own threads,
/// while reads recover the lock and keep answering — the serving layer
/// stays up on the last consistent snapshot.
#[test]
fn panicked_append_fails_writes_closed_and_keeps_reads_up() {
    use pivote_core::StoreError;

    let cfg = RankingConfig::default();
    let live = Arc::new(LiveStore::with_threads(
        ShardedGraph::from_graph(&generate(&DatagenConfig::tiny()), 2),
        1,
    ));
    let seeds = {
        let kg = generate(&DatagenConfig::tiny());
        let film = kg.type_id("Film").unwrap();
        kg.type_extent(film)[..2].to_vec()
    };
    let (want_f, want_e) = {
        // a healthy append first, so the poisoned snapshot is not the base
        let mut d = DeltaBatch::new();
        d.entity("Pre_Poison_Entity");
        live.append(&d).expect("store still healthy");
        let reader = live.read();
        let ctx = reader.ctx();
        let f = ctx.rank_features(&cfg, &seeds);
        let e = ctx.rank_entities(&cfg, &seeds, &f);
        (f, e)
    };

    // inject the panic mid-append, on its own thread, at the hook seam —
    // after the splice and cache invalidation, i.e. at a consistent point
    let injected = {
        let live = Arc::clone(&live);
        std::thread::spawn(move || {
            let mut d = DeltaBatch::new();
            d.entity("Poisoning_Entity");
            let _ = live.append_hooked(&d, |_| panic!("injected writer crash"));
        })
        .join()
    };
    assert!(injected.is_err(), "the injected panic must propagate");
    assert!(live.is_poisoned(), "the writer died holding the lock");

    // writes fail closed with the typed error — no panic, no partial apply
    let mut d = DeltaBatch::new();
    d.entity("Refused_Entity");
    assert_eq!(live.append(&d).unwrap_err(), StoreError::Poisoned);
    assert_eq!(
        live.compact_concurrent(2).unwrap_err(),
        StoreError::Poisoned
    );
    assert_eq!(live.compact_in_place(2).unwrap_err(), StoreError::Poisoned);
    let policy = pivote_kg::CompactionPolicy {
        max_trailing: 0,
        max_tail_fraction: 0.0,
        max_tombstone_fraction: 0.0,
    };
    assert!(
        live.maybe_compact(&policy, 2).is_none(),
        "maintenance declines instead of panicking"
    );

    // reads recover the lock: the last consistent snapshot (poisoning
    // append included — it completed its splice before the panic) keeps
    // answering, bit-identically
    assert_eq!(live.generation(), 2, "healthy append + poisoning append");
    let reader = live.read();
    assert!(reader.backend().entity("Poisoning_Entity").is_some());
    assert!(reader.backend().entity("Refused_Entity").is_none());
    let ctx = reader.ctx();
    let got_f = ctx.rank_features(&cfg, &seeds);
    assert_eq!(got_f, want_f, "post-poison features drifted");
    let got_e = ctx.rank_entities(&cfg, &seeds, &got_f);
    assert_eq!(got_e.len(), want_e.len());
    for (a, b) in got_e.iter().zip(&want_e) {
        assert_eq!(a.entity, b.entity);
        assert!(
            (a.score - b.score).abs() == 0.0,
            "post-poison score drifted"
        );
    }
}

//! Search-domain exploration (§3.2): pivot across domains —
//! Film → Actor → Film → Director — using the type-coupling structure of
//! Fig. 1-b to pick pivot directions.
//!
//! Run with: `cargo run --example domain_pivot`

use pivote::prelude::*;
use pivote_core::Direction;

fn main() {
    let kg = generate(&DatagenConfig::medium());
    let mut session = Session::with_defaults(&kg);

    // Fig. 1-b: which domains are coupled to Film, and through what?
    let stats = TypeCouplingStats::compute(&kg);
    let film = kg.type_id("Film").expect("Film type");
    println!("type view for Film (Fig. 1-b):");
    println!("{}", typeview_ascii(&kg, &stats, film, 8));

    // Start by investigating a popular film.
    let seed = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .unwrap();
    session.click_entity(seed);
    println!(
        "domain 1 (Film): investigating {:?} -> {} similar films",
        kg.display_name(seed),
        session.view().entities.len()
    );

    // Pivot 1: Film -> Actor, through the seed's cast.
    let starring = kg.predicate("starring").expect("starring predicate");
    let cast_feature = SemanticFeature {
        anchor: seed,
        predicate: starring,
        direction: Direction::FromAnchor,
    };
    let view = session.pivot(cast_feature);
    let domain = view
        .query
        .sf
        .type_filter
        .map(|t| kg.type_name(t).to_owned())
        .unwrap_or_else(|| "?".into());
    println!("\npivot 1 lands in domain: {domain}");
    for re in view.entities.iter().take(6) {
        println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
    }

    // Pivot 2: Actor -> Film, through the top actor's filmography.
    let top_actor = view.entities.first().map(|re| re.entity);
    if let Some(actor) = top_actor {
        let filmography = SemanticFeature::to_anchor(actor, starring);
        let view = session.pivot(filmography);
        let domain = view
            .query
            .sf
            .type_filter
            .map(|t| kg.type_name(t).to_owned())
            .unwrap_or_else(|| "?".into());
        println!(
            "\npivot 2 through {}:starring lands in domain: {domain}",
            kg.entity_name(actor)
        );
        for re in view.entities.iter().take(6) {
            println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
        }

        // Pivot 3: Film -> Director, through a film's director edge.
        if let Some(film_e) = view.entities.first().map(|re| re.entity) {
            let director = kg.predicate("director").expect("director predicate");
            let dir_feature = SemanticFeature {
                anchor: film_e,
                predicate: director,
                direction: Direction::FromAnchor,
            };
            let view = session.pivot(dir_feature);
            let domain = view
                .query
                .sf
                .type_filter
                .map(|t| kg.type_name(t).to_owned())
                .unwrap_or_else(|| "?".into());
            println!("\npivot 3 lands in domain: {domain}");
            for re in view.entities.iter().take(6) {
                println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
            }
        }
    }

    // The journey, as the Fig. 4 path.
    println!("\n-- exploratory path across domains --");
    print!("{}", path_ascii(session.path()));
}

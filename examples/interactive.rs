//! An interactive terminal REPL over the PivotE session engine — the
//! closest text analogue of the demo's web interface.
//!
//! Run with: `cargo run --release --example interactive`
//!
//! Commands:
//!   search <keywords>     submit a keyword query (Fig. 3-a)
//!   click <n>             add result n as a seed (investigation)
//!   feature <n>           require recommended feature n (refinement)
//!   pivot <n>             pivot through recommended feature n (browse)
//!   lookup <n>            show the profile of result n (Fig. 3-d)
//!   unseed <n>            remove seed n from the query
//!   timeline              show the query history (Fig. 3-g)
//!   revisit <i>           restore timeline entry i
//!   path                  show the exploratory path (Fig. 4)
//!   show                  redraw the current matrix view (Fig. 3)
//!   save <file>           export the session state as JSON
//!   quit

use pivote::prelude::*;
use std::io::{self, BufRead, Write};

fn main() {
    println!("building knowledge graph…");
    let kg = generate(&DatagenConfig::medium());
    let mut session = Session::with_defaults(&kg);
    println!(
        "ready: {} entities, {} triples. Type `help` for commands.",
        kg.entity_count(),
        kg.triple_count()
    );

    let stdin = io::stdin();
    loop {
        print!("pivote> ");
        io::stdout().flush().expect("flush stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        let (cmd, arg) = match line.split_once(' ') {
            Some((c, a)) => (c, a.trim()),
            None => (line, ""),
        };
        match cmd {
            "" => {}
            "help" => print_help(),
            "quit" | "exit" => break,
            "search" => {
                session.submit_keywords(arg);
                print!("{}", render_view(&kg, session.view()));
            }
            "click" | "lookup" | "unseed" => {
                let Some(e) = nth_entity(&session, arg) else {
                    println!("usage: {cmd} <result-number>");
                    continue;
                };
                match cmd {
                    "click" => {
                        session.click_entity(e);
                    }
                    "lookup" => {
                        session.lookup(e);
                    }
                    _ => {
                        session.apply(UserAction::RemoveSeed { entity: e });
                    }
                }
                print!("{}", render_view(&kg, session.view()));
            }
            "feature" | "pivot" => {
                let Some(sf) = nth_feature(&session, arg) else {
                    println!("usage: {cmd} <feature-number>");
                    continue;
                };
                if cmd == "feature" {
                    session.select_feature(sf);
                } else {
                    session.pivot(sf);
                }
                print!("{}", render_view(&kg, session.view()));
            }
            "timeline" => {
                for entry in session.timeline().iter() {
                    println!("  [{}] {:<12} {}", entry.index, entry.action, entry.summary);
                }
            }
            "revisit" => match arg.parse::<usize>() {
                Ok(i) => {
                    session.apply(UserAction::RevisitQuery { index: i });
                    print!("{}", render_view(&kg, session.view()));
                }
                Err(_) => println!("usage: revisit <timeline-index>"),
            },
            "path" => print!("{}", path_ascii(session.path())),
            "show" => print!("{}", render_view(&kg, session.view())),
            "sparql" => match pivote::pivote_sparql::query(&kg, arg) {
                Ok(rs) => {
                    println!("{} rows", rs.len());
                    print!("{}", rs.to_table(&kg));
                }
                Err(e) => println!("{e}"),
            },
            "stats" => {
                let stats = pivote::pivote_explore::session_stats(&kg, &session);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&stats).expect("stats serialize")
                );
            }
            "save" => {
                let file = if arg.is_empty() { "session.json" } else { arg };
                match std::fs::write(file, session.export_json()) {
                    Ok(()) => println!("saved to {file}"),
                    Err(e) => println!("save failed: {e}"),
                }
            }
            other => println!("unknown command {other:?}; type `help`"),
        }
    }
    println!("bye");
}

fn nth_entity(session: &Session<'_>, arg: &str) -> Option<EntityId> {
    let n: usize = arg.parse().ok()?;
    session
        .view()
        .entities
        .get(n.checked_sub(1)?)
        .map(|re| re.entity)
}

fn nth_feature(session: &Session<'_>, arg: &str) -> Option<SemanticFeature> {
    let n: usize = arg.parse().ok()?;
    session
        .view()
        .features
        .get(n.checked_sub(1)?)
        .map(|rf| rf.feature)
}

fn print_help() {
    println!(
        "\
  search <keywords>   submit a keyword query
  click <n>           add result n as a seed (investigate)
  feature <n>         require feature n (refine)
  pivot <n>           pivot through feature n (browse)
  lookup <n>          profile of result n
  unseed <n>          remove seed (result n)
  timeline            query history
  revisit <i>         restore timeline entry i
  path                exploratory path
  show                redraw the view
  sparql <query>      run a SPARQL SELECT over the graph
  stats               session statistics
  save <file>         export session JSON
  quit"
    );
}

//! Quickstart: graph → search → investigate → explain in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use pivote::prelude::*;

fn main() {
    // 1. A synthetic DBpedia-like movie knowledge graph (deterministic).
    let kg = generate(&DatagenConfig::medium());
    println!(
        "knowledge graph: {} entities, {} triples, {} types, {} categories",
        kg.entity_count(),
        kg.triple_count(),
        kg.type_count(),
        kg.category_count()
    );

    // 2. Keyword entity search (the paper's §2.2 engine).
    let engine = SearchEngine::with_defaults(&kg);
    let film = kg.type_id("Film").expect("Film type exists");
    let flagship = kg.type_extent(film)[0];
    let query = kg.display_name(flagship);
    println!("\nsearch: {query:?}");
    for hit in engine.search(&query, 5) {
        println!("  {:<40} {:.3}", kg.display_name(hit.entity), hit.score);
    }

    // 3. Investigation: expand a seed film into similar films + features.
    let expander = Expander::new(&kg, RankingConfig::default());
    let result = expander.expand(&SfQuery::from_seeds(vec![flagship]).with_type(film), 8, 6);
    println!("\nfilms similar to {:?}:", kg.display_name(flagship));
    for re in &result.entities {
        println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
    }
    println!("\ntheir most relevant semantic features:");
    for rf in &result.features {
        println!("  {:<40} {:.5}", rf.feature.display(&kg), rf.score);
    }

    // 4. Explanation: why are the top two results related?
    if result.entities.len() >= 2 {
        let a = result.entities[0].entity;
        let b = result.entities[1].entity;
        let explanation = explain_pair(expander.ranker(), a, b, 3);
        println!("\n{}", explanation.render(&kg));
    }

    // 5. The heat map (Fig. 3-f), as ASCII.
    let axis: Vec<EntityId> = result.entities.iter().map(|re| re.entity).collect();
    let hm = HeatMap::compute(expander.ranker(), &axis, &result.features);
    println!("\nheat map (darker = stronger correlation):");
    println!("{}", heatmap_ascii(&kg, &hm, 36));
}

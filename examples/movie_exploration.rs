//! The paper's running example as a full session: start from a film
//! (the "Forrest Gump" role), investigate similar films, look up an
//! actor, and trace the timeline — §3.1 "Entity investigation".
//!
//! Run with: `cargo run --example movie_exploration`

use pivote::prelude::*;

fn main() {
    let kg = generate(&DatagenConfig::medium());
    let mut session = Session::with_defaults(&kg);

    // Pick the most connected film as our "Forrest Gump".
    let film = kg.type_id("Film").expect("Film type");
    let gump = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .expect("at least one film");
    println!("protagonist film: {}", kg.display_name(gump));

    // 1. The user types the film's name.
    let view = session.submit_keywords(&kg.display_name(gump));
    println!("\n-- after keyword search --");
    for re in view.entities.iter().take(5) {
        println!("  {:<40} {:.3}", kg.display_name(re.entity), re.score);
    }

    // 2. The user clicks the film: investigation begins (same-type
    //    expansion, auto type filter).
    let view = session.click_entity(gump);
    println!(
        "\n-- investigating films similar to {} --",
        kg.display_name(gump)
    );
    for re in view.entities.iter().take(8) {
        println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
    }
    println!("query now: {}", view.query.summary(&kg));

    // 3. Add a second seed — "find films similar to BOTH".
    if let Some(second) = view.entities.first().map(|re| re.entity) {
        let view = session.click_entity(second);
        println!("\n-- after adding seed {} --", kg.display_name(second));
        for re in view.entities.iter().take(8) {
            println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
        }
    }

    // 4. Select the strongest feature as a hard condition ("Find films
    //    starring X").
    let top_feature = session.view().features.first().map(|rf| rf.feature);
    if let Some(sf) = top_feature {
        let view = session.select_feature(sf);
        println!("\n-- after requiring {} --", sf.display(&kg));
        for re in view.entities.iter().take(8) {
            println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
        }
    }

    // 5. Look up an entity profile (Fig. 3-d).
    if let Some(e) = session.view().entities.first().map(|re| re.entity) {
        session.lookup(e);
        if let Some(profile) = &session.view().focus {
            println!("\n-- profile --\n{}", profile.render());
        }
    }

    // 6. The timeline (Fig. 3-g).
    println!("-- timeline --");
    for entry in session.timeline().iter() {
        println!("  [{}] {:<12} {}", entry.index, entry.action, entry.summary);
    }

    // 7. Revisit the first investigation.
    session.apply(UserAction::RevisitQuery { index: 1 });
    println!("\nrevisited query: {}", session.view().query.summary(&kg));

    // 8. The exploratory path (Fig. 4).
    println!("\n-- exploratory path --");
    print!("{}", path_ascii(session.path()));
}

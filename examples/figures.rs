//! Regenerates every exhibit of the paper as a concrete artifact:
//!
//! - Table 1  — the five-field representation of a flagship film;
//! - Fig. 1-a — a film's local neighbourhood and semantic features;
//! - Fig. 1-b — the entity-type coupling view;
//! - Fig. 3   — the matrix interface (entities × features + heat map),
//!   as ASCII on stdout and SVG under `target/figures/`;
//! - Fig. 4   — an exploratory path, as ASCII, DOT and SVG.
//!
//! Run with: `cargo run --example figures`

use pivote::prelude::*;
use pivote_core::Direction;
use pivote_viz::{heatmap_svg, path_dot, path_svg, typeview_svg};
use std::fs;
use std::path::Path;

fn main() {
    let kg = generate(&DatagenConfig::medium());
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");

    let film = kg.type_id("Film").expect("Film type");
    let flagship = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .unwrap();

    // ---- Table 1 --------------------------------------------------------
    println!(
        "== Table 1: five-field representation of {} ==",
        kg.display_name(flagship)
    );
    let engine = SearchEngine::with_defaults(&kg);
    let repr = engine.representation(&kg, flagship);
    println!("{}", repr.to_table(3));

    // ---- Fig. 1-a -------------------------------------------------------
    println!(
        "== Fig. 1-a: local semantic features of {} ==",
        kg.display_name(flagship)
    );
    let expander = Expander::new(&kg, RankingConfig::default());
    let mut features = features_of(&kg, flagship);
    features.sort_by(|a, b| {
        expander
            .ranker()
            .discriminability(*b)
            .partial_cmp(&expander.ranker().discriminability(*a))
            .unwrap()
    });
    for sf in features.iter().take(10) {
        println!("  {:<44} ‖E(π)‖ = {}", sf.display(&kg), sf.extent_size(&kg));
    }
    println!();

    // ---- Fig. 1-b -------------------------------------------------------
    println!("== Fig. 1-b: entity-type view ==");
    let stats = TypeCouplingStats::compute(&kg);
    println!("{}", typeview_ascii(&kg, &stats, film, 8));
    fs::write(
        out_dir.join("fig1b_typeview.svg"),
        typeview_svg(&kg, &stats, film, 8),
    )
    .expect("write fig1b");

    // ---- Fig. 3 ---------------------------------------------------------
    println!(
        "== Fig. 3: the matrix interface for seed {} ==",
        kg.display_name(flagship)
    );
    let mut session = Session::with_defaults(&kg);
    session.click_entity(flagship);
    session.lookup(flagship);
    println!("{}", render_view(&kg, session.view()));
    fs::write(
        out_dir.join("fig3f_heatmap.svg"),
        heatmap_svg(&kg, &session.view().heatmap),
    )
    .expect("write fig3f");
    fs::write(
        out_dir.join("fig3f_heatmap.tsv"),
        pivote_viz::heatmap_tsv(&kg, &session.view().heatmap),
    )
    .expect("write fig3f tsv");
    fs::write(
        out_dir.join("fig3f_heatmap.html"),
        pivote_viz::heatmap_html(&kg, &session.view().heatmap),
    )
    .expect("write fig3f html");

    // ---- Fig. 4 ---------------------------------------------------------
    // A scripted session: search → investigate → lookup → pivot → revisit.
    let starring = kg.predicate("starring").expect("starring");
    let sf = SemanticFeature {
        anchor: flagship,
        predicate: starring,
        direction: Direction::FromAnchor,
    };
    session.pivot(sf);
    session.apply(UserAction::RevisitQuery { index: 0 });
    println!("== Fig. 4: exploratory path ==");
    print!("{}", path_ascii(session.path()));
    fs::write(out_dir.join("fig4_path.dot"), path_dot(session.path())).expect("write fig4 dot");
    fs::write(out_dir.join("fig4_path.svg"), path_svg(session.path())).expect("write fig4 svg");

    println!("\nartifacts written to {}/", out_dir.display());
    for entry in fs::read_dir(out_dir).expect("read figures dir") {
        println!("  {}", entry.expect("entry").path().display());
    }
}

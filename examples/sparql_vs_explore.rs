//! The paper's motivating contrast (§1): structured access (SPARQL)
//! requires knowing the schema up front; exploratory search discovers it
//! by clicking. This example answers the same information need both
//! ways and prints what each approach demands from the user.
//!
//! Run with: `cargo run --example sparql_vs_explore`

use pivote::prelude::*;
use pivote_core::Direction;

fn main() {
    let kg = generate(&DatagenConfig::medium());
    let film = kg.type_id("Film").expect("Film type");
    let starring = kg.predicate("starring").expect("starring");

    // The information need: "films like this one, and who they star".
    let seed = *kg
        .type_extent(film)
        .iter()
        .max_by_key(|&&f| kg.degree(f))
        .unwrap();
    let seed_name = kg.entity_name(seed);
    println!("information need: films related to {seed_name}, and their casts\n");

    // ---- the structured way -------------------------------------------
    // The user must already know: the type name, the predicate name, the
    // exact resource id, and SPARQL syntax.
    let actor_of_seed = kg.objects(seed, starring)[0];
    let sparql = format!(
        "SELECT DISTINCT ?film ?actor WHERE {{\n  ?film dbo:starring dbr:{} .\n  ?film dbo:starring ?actor .\n  ?film a dbo:Film .\n}} LIMIT 15",
        kg.entity_name(actor_of_seed)
    );
    println!("== SPARQL (the user writes this by hand) ==\n{sparql}\n");
    let rs = pivote_sparql::query(&kg, &sparql).expect("valid query");
    println!("{} rows:", rs.len());
    print!("{}", rs.to_table(&kg));

    // ---- the exploratory way ------------------------------------------
    // The user types a name and clicks twice. No schema knowledge.
    println!("\n== PivotE (the user clicks) ==");
    let mut session = Session::with_defaults(&kg);
    session.submit_keywords(&kg.display_name(seed)); // type the name
    session.click_entity(seed); // click the film
    println!("after one click — similar films:");
    for re in session.view().entities.iter().take(8) {
        println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
    }
    println!("\nrecommended features (the schema, discovered):");
    for rf in session.view().features.iter().take(6) {
        println!("  {:<44} {:.5}", rf.feature.display(&kg), rf.score);
    }
    // pivot = the second click; lands in the Actor domain without the
    // user naming it
    let view = session.pivot(SemanticFeature {
        anchor: seed,
        predicate: starring,
        direction: Direction::FromAnchor,
    });
    let domain = view
        .query
        .sf
        .type_filter
        .map(|t| kg.type_name(t).to_owned())
        .unwrap_or_default();
    println!("\nafter one more click — pivoted into {domain}:");
    for re in view.entities.iter().take(8) {
        println!("  {:<40} {:.4}", kg.display_name(re.entity), re.score);
    }

    println!(
        "\nsame neighbourhood, two interfaces: SPARQL needed 4 schema facts; \
         the session needed a keyword and two clicks."
    );
}

//! # pivote — a reproduction of PivotE (VLDB 2019)
//!
//! *PivotE: Revealing and Visualizing the Underlying Entity Structures
//! for Exploration* (Han, Chen, Lu, Chen, Du; PVLDB 12(12), 2019) is an
//! entity-oriented exploratory search system over knowledge graphs. This
//! workspace reproduces it end to end in Rust:
//!
//! | crate | role |
//! |---|---|
//! | [`pivote_kg`] | knowledge-graph store, N-Triples IO, synthetic DBpedia-like generator |
//! | [`pivote_text`] | tokenization / stopwords / stemming |
//! | [`pivote_search`] | five-field entity search with a mixture of language models (§2.2) |
//! | [`pivote_core`] | semantic features + the path-based ranking model (§2.3) |
//! | [`pivote_explore`] | session engine: dynamic query formulation, timeline, pivot, path (§2.1, §3) |
//! | [`pivote_baselines`] | Jaccard / PPR / frequency-overlap comparison systems |
//! | [`pivote_eval`] | metrics, ground truth and experiment harness |
//! | [`pivote_serve`] | TCP serving layer: line-JSON rank/expand/heatmap/search/append |
//! | [`pivote_viz`] | ASCII/SVG/DOT renderers for the paper's figures |
//!
//! The [`prelude`] re-exports the types most applications need.
//!
//! ```
//! use pivote::prelude::*;
//!
//! // Build a DBpedia-like graph, start a session, investigate a film.
//! let kg = generate(&DatagenConfig::tiny());
//! let mut session = Session::with_defaults(&kg);
//! let film = kg.type_id("Film").unwrap();
//! let view = session.click_entity(kg.type_extent(film)[0]);
//! assert!(!view.entities.is_empty() || !view.features.is_empty());
//! ```

#![warn(missing_docs)]

pub use pivote_baselines;
pub use pivote_core;
pub use pivote_eval;
pub use pivote_explore;
pub use pivote_kg;
pub use pivote_search;
pub use pivote_serve;
pub use pivote_sparql;
pub use pivote_text;
pub use pivote_viz;

/// The types most applications need, re-exported flat.
pub mod prelude {
    pub use pivote_core::{
        explain_cell, explain_pair, features_of, Direction, Expander, ExpansionResult, HeatMap,
        RankedEntity, RankedFeature, Ranker, RankingConfig, SemanticFeature, SfQuery,
    };
    pub use pivote_explore::{
        build_profile, EntityProfile, ExplorationPath, ExplorationQuery, Session, SessionConfig,
        UserAction, ViewState,
    };
    pub use pivote_kg::{
        generate, DatagenConfig, EntityId, KgBuilder, KnowledgeGraph, Literal, PredicateId,
        TypeCouplingStats, TypeId,
    };
    pub use pivote_search::{Field, FiveFieldRepr, Scorer, SearchConfig, SearchEngine};
    pub use pivote_viz::{heatmap_ascii, heatmap_svg, path_ascii, render_view, typeview_ascii};
}

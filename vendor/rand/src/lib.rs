//! Minimal in-repo stand-in for `rand`.
//!
//! Provides exactly the surface this workspace uses: `StdRng` (seedable,
//! deterministic xoshiro256** behind a splitmix64 seed expander), the
//! [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::shuffle`. Determinism is cross-platform: the same
//! seed yields the same stream on every target, which the synthetic data
//! generator relies on.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `gen_range`. Generic over the output type so type
/// inference flows from the call site into the range literal, matching
/// real rand's `SampleRange<T>` shape.
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics when empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `0..span` without modulo bias (rejection sampling).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span always fits in u64 for the ranges this workspace uses
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Extension methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — deterministic, fast, and good
    /// enough for synthetic data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension: in-place shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1920..=1995);
            assert!((1920..=1995).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}

//! Derive macros for the vendored `serde` stand-in.
//!
//! `syn`/`quote` are not available offline, so this crate parses the
//! derive input token stream by hand. Supported shapes — exactly what the
//! workspace uses:
//!
//! - structs with named fields;
//! - tuple structs (newtype structs serialize transparently, matching
//!   `#[serde(transparent)]`; wider tuple structs serialize as arrays);
//! - enums with unit variants (serialized as the variant-name string),
//!   newtype/tuple variants (`{"Variant": payload}`) and struct variants
//!   (`{"Variant": {field: ..}}`) — serde's externally-tagged default.
//!
//! Generics are not supported; the workspace derives only on concrete
//! types. `#[serde(...)]` attributes are accepted and ignored except that
//! newtype structs are always transparent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: named (`Some(name)`) or positional.
struct Field {
    name: Option<String>,
}

enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` — one field is treated as transparent.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { A, B(T), C { x: T } }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: {name}");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    };
    Parsed { name, shape }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a brace-group token stream of named fields into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name: Some(name) });
        // optional trailing comma already consumed by skip_type
    }
    fields
}

/// Advance past one type, stopping after the top-level `,` that follows it
/// (or at end of stream). Tracks `<...>` nesting; parens/brackets arrive
/// pre-grouped.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                *i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

/// Count comma-separated types in a paren group (tuple-struct body).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| f.name.expect("named field"))
                        .collect(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // consume a trailing comma if present
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- codegen -----------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    format!(
                        "__fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Obj(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__a0) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(__a0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::Value::Arr(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), ::serde::Value::Obj(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    format!(
                        "{fname}: ::serde::Deserialize::from_value(__v.field_opt(\"{fname}\"))?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n ::serde::Value::Arr(__items) if __items.len() == {n} => Ok({name}({})),\n other => Err(::serde::Error::new(format!(\"expected {n}-element array for {name}, got {{}}\", other.kind()))),\n}}",
                gets.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n let __items = match __payload {{ ::serde::Value::Arr(a) if a.len() == {n} => a, other => return Err(::serde::Error::new(format!(\"expected {n}-element array for {name}::{vname}, got {{}}\", other.kind()))) }};\n return Ok({name}::{vname}({}));\n}}\n",
                                gets.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(__payload.field_opt(\"{f}\"))?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => return Ok({name}::{vname} {{ {} }}),\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n ::serde::Value::Str(__s) => {{ match __s.as_str() {{\n{unit_arms} __other => return Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))), }} }}\n ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n let (__tag, __payload) = &__fields[0];\n match __tag.as_str() {{\n{payload_arms} __other => return Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` of {name}\"))), }} }}\n other => Err(::serde::Error::new(format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

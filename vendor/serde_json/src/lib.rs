//! Minimal in-repo stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back. Strings are escaped per RFC 8259;
//! numbers use Rust's shortest-round-trip float formatting, with integral
//! values in the f64-exact range printed without a fractional part.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for JSON serialization/parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize straight to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Rebuild a type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- writer ------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null like serde_json's default
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pair
                            if (0xd800..0xdc00).contains(&code)
                                && self.bytes.get(self.pos + 1) == Some(&b'\\')
                                && self.bytes.get(self.pos + 2) == Some(&b'u')
                            {
                                if let Some(hex2) = self.bytes.get(self.pos + 3..self.pos + 7) {
                                    if let Ok(low) = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error::new("invalid \\u escape"))?,
                                        16,
                                    ) {
                                        if (0xdc00..0xe000).contains(&low) {
                                            code =
                                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                            self.pos += 6;
                                        }
                                    }
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return Err(Error::new(format!(
                        "unterminated string ({:?} at byte {})",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "-12", "3.5", "\"hi\\n\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = parse_value(r#"{"a":1}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn float_fidelity() {
        let v = parse_value("0.1").unwrap();
        assert_eq!(v, Value::Num(0.1));
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out.parse::<f64>().unwrap(), 0.1);
    }
}

//! Minimal in-repo stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement: per benchmark, one warmup round sizes the iteration count
//! so a sample takes ≥ ~25 ms, then `sample_size` samples are timed.
//! Median, mean and min are printed as a table row on stdout — and, when
//! the `BENCH_JSON` environment variable names a file, appended to it as
//! JSON lines for machine consumption (one object per benchmark).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock time of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
            sample_size: 10,
        }
    }

    /// Register a stand-alone benchmark (implicit group `""`).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            _parent: self,
            group: String::new(),
            sample_size: 10,
        };
        g.bench_function(id, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.group, &id.0, &bencher.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.group, &id.0, &bencher.samples);
        self
    }

    /// Close the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// How `iter_batched` amortizes setup cost.
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Few large batches (treated like `PerIteration` here).
    SmallInput,
    /// One batch per sample (treated like `PerIteration` here).
    LargeInput,
}

/// Times closures; collected samples are per-iteration durations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup + calibration: how many iterations fill TARGET_SAMPLE?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: median {}  mean {}  min {}  (n={})",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        sorted.len()
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}",
                median.as_nanos(),
                mean.as_nanos(),
                min.as_nanos(),
                sorted.len()
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions into one registry function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(5);
        let mut setups = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 5);
    }
}

//! Minimal in-repo stand-in for `serde`.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the narrow slice of serde it
//! actually uses: a self-describing [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits over it, and a derive macro (re-exported from
//! `serde_derive`) that handles named structs, tuple/newtype structs and
//! enums with unit, newtype, tuple and struct variants. `serde_json`
//! (also vendored) renders [`Value`] to and from JSON text.
//!
//! The implementation favors being obviously correct over being fast:
//! serialization round-trips through an owned tree. All round-trip
//! guarantees the workspace tests rely on (struct/enum shape, f64
//! fidelity via shortest-round-trip formatting, map ordering) hold.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object, erroring when absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Like [`Value::field`] but tolerating absence (for `Option` fields).
    pub fn field_opt(&self, name: &str) -> &Value {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Short description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    fn expect_num(&self) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the value data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ---------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.expect_num()?;
                if n.fract() != 0.0 {
                    return Err(Error::new(format!("expected integer, got {n}")));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.expect_num()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.expect_num()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected char, got {}", other.kind()))),
        }
    }
}

// ---- containers --------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let tmp: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                tmp.try_into()
                    .map_err(|_| Error::new("array length mismatch"))
            }
            other => Err(Error::new(format!(
                "expected array of length {N}, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::new(format!(
                "expected 2-tuple, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::new(format!(
                "expected 3-tuple, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // deterministic output: sort keys
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

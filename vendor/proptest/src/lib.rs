//! Minimal in-repo stand-in for `proptest`.
//!
//! Deterministic randomized property testing: the [`proptest!`] macro
//! expands each property into a `#[test]` that draws `ProptestConfig::cases`
//! inputs from [`Strategy`] values and runs the body. The RNG is seeded
//! from the property's name, so failures reproduce across runs and
//! machines. No shrinking — a failing case panics with the assertion
//! message (inputs are in scope, so include them via format args when
//! helpful).
//!
//! Supported strategies — exactly the workspace's usage: integer ranges,
//! tuples of strategies, regex-like pattern strings (`"[a-z0-9]{1,12}"`,
//! `".{0,80}"`), `prop_map`, and `collection::{vec, btree_set, hash_set}`.

use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Re-exports used via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic test RNG (xoshiro-style splitmix stream).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a property name.
    pub fn from_name(name: &str) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is keyless and stable for a given std
        name.hash(&mut h);
        Self(h.finish() | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Pattern-string strategies: a subset of regex sufficient for the
/// workspace (`.`, `[a-zA-Z0-9_]` classes with ranges, `{m,n}` repeats,
/// plain literal characters).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // one unit: '.', a class, or a literal char
        let pool: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                // printable ASCII plus a couple of multibyte chars to
                // stress UTF-8 handling
                let mut p: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
                p.extend(['é', 'ß', '中', '—']);
                p
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let mut p = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            p.push(char::from_u32(c).expect("valid class range"));
                        }
                        j += 3;
                    } else {
                        p.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                p
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // optional {m,n} repetition
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repeat min"),
                    n.trim().parse::<usize>().expect("repeat max"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::{BTreeSet, HashSet};

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// `BTreeSet` with up to `size` elements.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    /// `HashSet` with up to `size` elements.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            // duplicates shrink the set, like proptest's behavior
            for _ in 0..target {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_size(&self.size, rng);
            let mut out = HashSet::new();
            for _ in 0..target {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

pub use collection::{BTreeSetStrategy, HashSetStrategy, VecStrategy};

/// Assert inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define properties: each `fn name(arg in strategy, ...)` block becomes a
/// `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use crate as proptest;

    #[test]
    fn pattern_class_with_repeat() {
        let mut rng = TestRng::from_name("t1");
        for _ in 0..200 {
            let s = super::generate_pattern("[a-zA-Z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn pattern_dot_repeat_allows_empty() {
        let mut rng = TestRng::from_name("t2");
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = super::generate_pattern(".{0,3}", &mut rng);
            assert!(s.chars().count() <= 3);
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty);
    }

    proptest! {
        #[test]
        fn macro_draws_in_range(x in 3u32..17, pair in (0u8..4, 0usize..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Config is honored (implicitly: this must terminate fast).
        #[test]
        fn configured_cases_run(v in proptest::collection::vec(0u32..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }
}
